package wire

import (
	"bytes"
	"context"
	"math/big"
	"testing"

	"embellish/internal/detrand"
	"embellish/internal/docstore"
	"embellish/internal/pir"
)

// FuzzDecodeQuery: a hostile peer controls the query body entirely;
// decoding must never panic or over-allocate, only return errors or a
// structurally valid query.
func FuzzDecodeQuery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x81, 7, 0x81, 3, 0x81, 5, 0x81, 0x80})
	f.Fuzz(func(t *testing.T, body []byte) {
		q, err := DecodeQuery(body)
		if err != nil {
			return
		}
		for i, e := range q.Entries {
			if e.Flag == nil || e.Flag.Sign() <= 0 || e.Flag.Cmp(q.Pub.N) >= 0 {
				t.Fatalf("entry %d flag escaped validation", i)
			}
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeQuery for the response path.
func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add(bytes.Repeat([]byte{0x81}, 16))
	f.Fuzz(func(t *testing.T, body []byte) {
		cands, _, err := DecodeResponse(body)
		if err != nil {
			return
		}
		for i, c := range cands {
			if c.Enc == nil {
				t.Fatalf("candidate %d has nil ciphertext", i)
			}
		}
	})
}

// FuzzDecodeMessage drives the full server-side dispatch: a hostile
// peer controls the type byte and the body, and every decoder behind
// it must return clean errors or validated structures, never panic or
// over-allocate. Seeded with one valid body per message type.
func FuzzDecodeMessage(f *testing.F) {
	seedFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		typ, body := data[0], data[1:]
		switch typ {
		case TypeQuery:
			_, _ = DecodeQuery(body)
		case TypeResponse:
			_, _, _ = DecodeResponse(body)
		case TypeBatchQuery:
			_, _ = DecodeBatchQuery(body)
		case TypeBatchResponse:
			_, _, _ = DecodeBatchResponse(body)
		case TypeAddDocs:
			_, _ = DecodeAddDocs(body)
		case TypeDeleteDocs:
			_, _ = DecodeDeleteDocs(body)
		case TypeAdminOK:
			_, _, _ = DecodeAdminOK(body)
		case TypePIRParams:
			if p, err := DecodePIRParams(body); err == nil {
				for i, ext := range p.Exts {
					if int(ext.First)+int(ext.Blocks) > p.NumBlocks {
						t.Fatalf("extent %d escaped validation", i)
					}
				}
			}
		case TypePIRQuery:
			_, _ = DecodePIRQuery(body)
		case TypePIRResponse:
			_, _ = DecodePIRAnswer(body)
		case TypePIRBatchQuery:
			if qs, err := DecodePIRBatchQuery(body); err == nil {
				for i, q := range qs {
					for j, v := range q.Values {
						if v == nil || v.Sign() <= 0 || v.Cmp(q.N) >= 0 {
							t.Fatalf("batch query %d value %d escaped validation", i, j)
						}
					}
				}
			}
		case TypePIRBatchResponse:
			_, _, _ = DecodePIRBatchAnswer(body)
		case TypePIRRecursiveQuery:
			if qs, err := DecodePIRRecursiveQuery(body); err == nil {
				for i, q := range qs {
					for _, vec := range [][]*big.Int{q.Rows, q.Cols} {
						for j, v := range vec {
							if v == nil || v.Sign() <= 0 || v.Cmp(q.N) >= 0 {
								t.Fatalf("recursive query %d value %d escaped validation", i, j)
							}
						}
					}
				}
			}
		case TypeStats:
			_, _ = DecodeStats(body)
		case TypeLexiconSync:
			_, _ = DecodeLexiconSync(body)
		case TypeLexicon:
			if l, err := DecodeLexicon(body); err == nil && !l.Current {
				if len(l.Org) == 0 || len(l.Lex) == 0 || l.ScoreSpace <= 0 {
					t.Fatal("full lexicon payload escaped validation")
				}
			}
		case TypeDecoyQuery:
			// Same grammar as TypeQuery; the type byte only marks cover
			// traffic, so the query decoder must hold up here too.
			if q, err := DecodeQuery(body); err == nil {
				for i, e := range q.Entries {
					if e.Flag == nil || e.Flag.Sign() <= 0 || e.Flag.Cmp(q.Pub.N) >= 0 {
						t.Fatalf("decoy entry %d flag escaped validation", i)
					}
				}
			}
		case TypeRiskAudit:
			_, _ = DecodeRiskAudit(body)
		}
	})
}

// seedFrames adds one valid encoded body (type byte prepended) per
// message type, so the fuzzer starts from the accepted grammar.
func seedFrames(f *testing.F) {
	add := func(write func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			f.Fatal(err)
		}
		typ, body, err := ReadMessage(&buf)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte{typ}, body...))
	}
	key, err := pir.GenerateKey(detrand.New("fuzz-seed"), 96)
	if err != nil {
		f.Fatal(err)
	}
	q, err := key.NewQuery(detrand.New("fuzz-seed-q"), 3, 1)
	if err != nil {
		f.Fatal(err)
	}
	add(func(w *bytes.Buffer) error { return WritePIRQuery(w, q) })
	add(func(w *bytes.Buffer) error { return WritePIRBatchQuery(w, []*pir.Query{q, q}) })
	rq, err := key.NewRecursiveQuery(detrand.New("fuzz-seed-rq"), 9, 4)
	if err != nil {
		f.Fatal(err)
	}
	add(func(w *bytes.Buffer) error { return WritePIRRecursiveQuery(w, []*pir.RecursiveQuery{rq, rq}) })
	l1 := &pir.RecursiveQuery{N: rq.N, Width: rq.Width, GridCols: rq.GridCols, Span: 2, Rows: rq.Rows}
	add(func(w *bytes.Buffer) error { return WritePIRRecursiveQuery(w, []*pir.RecursiveQuery{l1}) })
	add(func(w *bytes.Buffer) error {
		return WritePIRBatchAnswer(w, 1, &pir.Answer{Gammas: []*big.Int{big.NewInt(5), big.NewInt(9)}})
	})
	add(func(w *bytes.Buffer) error {
		return WritePIRParams(w, docstore.Params{BlockSize: 8, NumBlocks: 3, Exts: []docstore.Extent{
			{First: 0, Blocks: 2, Length: 9}, {First: 2, Blocks: 1, Length: 4, Deleted: true}}})
	})
	add(func(w *bytes.Buffer) error {
		return WritePIRAnswer(w, &pir.Answer{Gammas: []*big.Int{big.NewInt(5), big.NewInt(9)}})
	})
	add(func(w *bytes.Buffer) error { return WriteAddDocs(w, []DocText{{ID: 0, Text: "seed doc"}}) })
	add(func(w *bytes.Buffer) error { return WriteDeleteDocs(w, []uint32{3, 7}) })
	add(func(w *bytes.Buffer) error { return WriteAdminOK(w, 10, 2) })
	add(func(w *bytes.Buffer) error { return WriteError(w, "seed error") })
	add(func(w *bytes.Buffer) error {
		return WriteStats(w, Stats{Accepted: 12, Queries: 99, QueryNs: 1 << 40, Inflight: 3,
			Queued: 2, ShedQueueFull: 1, Durable: 1, WALSeq: 77, WALCheckpointSeq: 70})
	})
	add(func(w *bytes.Buffer) error { return WriteLexiconSync(w, 0) })
	add(func(w *bytes.Buffer) error { return WriteLexiconSync(w, 0xdeadbeef) })
	add(func(w *bytes.Buffer) error {
		return WriteLexicon(w, Lexicon{Version: 7, Current: true})
	})
	add(func(w *bytes.Buffer) error {
		return WriteLexicon(w, Lexicon{Version: 7, ScoreSpace: 12, KeyBits: 192, Stopwords: true,
			Org: []byte("EBKT-seed-org"), Lex: []byte("ELEX-seed-db")})
	})
	add(func(w *bytes.Buffer) error { return WriteDecoyQuery(w, []byte{0x81, 7, 0x81, 3, 0x81, 5, 0x81, 0x80}) })
	add(func(w *bytes.Buffer) error { return WriteRiskAuditRequest(w) })
	add(func(w *bytes.Buffer) error {
		return WriteRiskAudit(w, RiskAudit{Queries: 9, Decoys: 36, Audited: 9,
			RiskSumMicros: 123456, MaxRiskMicros: 40000, Rounds: 9, RoundHits: 3,
			CoherenceGenuineSumMicros: 9e6, CoherenceDecoySumMicros: 30e6})
	})
}

// FuzzPIRQuery goes one layer deeper than FuzzDecodeMessage: bodies
// that survive decoding are served against a real block store, so the
// answer path (not just the decoder) holds up under hostile queries.
func FuzzPIRQuery(f *testing.F) {
	key, err := pir.GenerateKey(detrand.New("fuzz-pir"), 96)
	if err != nil {
		f.Fatal(err)
	}
	for target := 0; target < 3; target++ {
		q, err := key.NewQuery(detrand.New("fuzz-pir-q"), 3, target)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WritePIRQuery(&buf, q); err != nil {
			f.Fatal(err)
		}
		_, body, err := ReadMessage(&buf)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	store, err := docstore.New(4)
	if err != nil {
		f.Fatal(err)
	}
	for i, text := range []string{"alpha", "beta", "gamma gamma"} {
		if err := store.Add(i, []byte(text)); err != nil {
			f.Fatal(err)
		}
	}
	sn := store.Snapshot()
	f.Fuzz(func(t *testing.T, body []byte) {
		q, err := DecodePIRQuery(body)
		if err != nil {
			return
		}
		for i, v := range q.Values {
			if v == nil || v.Sign() <= 0 || v.Cmp(q.N) >= 0 {
				t.Fatalf("value %d escaped validation", i)
			}
		}
		// Serve decoded queries only at sane moduli: the decoder accepts
		// up to 8192-bit N (a deliberate serving-cost ceiling), which is
		// too slow for per-input fuzz iterations.
		if q.N.BitLen() > 512 || len(q.Values) > sn.NumBlocks() {
			return
		}
		ans, _, err := sn.Answer(q)
		if err != nil {
			t.Fatalf("in-range decoded query refused: %v", err)
		}
		if len(ans.Gammas) != 8*sn.BlockSize() {
			t.Fatalf("answer has %d gammas, want %d", len(ans.Gammas), 8*sn.BlockSize())
		}
	})
}

// FuzzPIRBatchQuery drives the amortized serving path with hostile
// batch frames: bodies that survive DecodePIRBatchQuery are answered
// in ONE database pass (docstore.AnswerMulti), and every answer must
// be byte-identical to the per-query reference — so the Montgomery
// one-pass kernel is fuzzed against the sequential path, not just the
// decoder grammar.
func FuzzPIRBatchQuery(f *testing.F) {
	key, err := pir.GenerateKey(detrand.New("fuzz-pir-batch"), 96)
	if err != nil {
		f.Fatal(err)
	}
	for _, targets := range [][]int{{0}, {0, 2}, {1, 1, 2}} {
		qs := make([]*pir.Query, len(targets))
		for i, target := range targets {
			q, err := key.NewQuery(detrand.New("fuzz-pir-batch-q"), 3, target)
			if err != nil {
				f.Fatal(err)
			}
			qs[i] = q
		}
		var buf bytes.Buffer
		if err := WritePIRBatchQuery(&buf, qs); err != nil {
			f.Fatal(err)
		}
		_, body, err := ReadMessage(&buf)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	store, err := docstore.New(4)
	if err != nil {
		f.Fatal(err)
	}
	for i, text := range []string{"alpha", "beta", "gamma gamma"} {
		if err := store.Add(i, []byte(text)); err != nil {
			f.Fatal(err)
		}
	}
	sn := store.Snapshot()
	f.Fuzz(func(t *testing.T, body []byte) {
		qs, err := DecodePIRBatchQuery(body)
		if err != nil {
			return
		}
		for i, q := range qs {
			for j, v := range q.Values {
				if v == nil || v.Sign() <= 0 || v.Cmp(q.N) >= 0 {
					t.Fatalf("batch query %d value %d escaped validation", i, j)
				}
			}
		}
		// Same serving-cost ceiling as FuzzPIRQuery, plus the multi
		// path's equal-width contract: mixed-width frames are grouped by
		// the server before reaching AnswerMulti, so the fuzz serves
		// only uniform batches and requires a clean refusal otherwise.
		for _, q := range qs {
			if q.N.BitLen() > 512 || len(q.Values) > sn.NumBlocks() {
				return
			}
		}
		uniform := true
		for _, q := range qs[1:] {
			if len(q.Values) != len(qs[0].Values) {
				uniform = false
				break
			}
		}
		answers, _, err := sn.AnswerMulti(qs)
		if !uniform {
			if err == nil {
				t.Fatal("mixed-width batch served without error")
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range decoded batch refused: %v", err)
		}
		for i, q := range qs {
			ref, _, err := sn.Answer(q)
			if err != nil {
				t.Fatalf("per-query reference %d refused: %v", i, err)
			}
			if len(answers[i].Gammas) != len(ref.Gammas) {
				t.Fatalf("query %d: %d gammas, reference has %d", i, len(answers[i].Gammas), len(ref.Gammas))
			}
			for j := range ref.Gammas {
				if answers[i].Gammas[j].Cmp(ref.Gammas[j]) != 0 {
					t.Fatalf("query %d gamma %d: one-pass answer diverges from per-query reference", i, j)
				}
			}
		}
	})
}

// FuzzPIRRecursiveQuery drives the recursive serving path with hostile
// frames: forged counts, oversized selection vectors, mismatched grid
// dimensions and truncated bodies must all fail in the decoder or the
// pir shape validation — never panic, never over-allocate — and bodies
// that survive are served with two different execution tunings whose
// gammas must agree (the windowed fast kernel against itself under a
// different worker/window split).
func FuzzPIRRecursiveQuery(f *testing.F) {
	key, err := pir.GenerateKey(detrand.New("fuzz-pir-rec"), 96)
	if err != nil {
		f.Fatal(err)
	}
	wordKey, err := pir.GenerateKey(detrand.New("fuzz-pir-rec-word"), 64)
	if err != nil {
		f.Fatal(err)
	}
	for _, k := range []*pir.ClientKey{key, wordKey} {
		for target := 0; target < 3; target++ {
			q, err := k.NewRecursiveQuery(detrand.New("fuzz-pir-rec-q"), 3, target)
			if err != nil {
				f.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WritePIRRecursiveQuery(&buf, []*pir.RecursiveQuery{q}); err != nil {
				f.Fatal(err)
			}
			_, body, err := ReadMessage(&buf)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(body)
		}
	}
	// Level-1-only partition frame (no column vector), as a router sends.
	pq, err := key.NewRecursiveQuery(detrand.New("fuzz-pir-rec-p"), 3, 1)
	if err != nil {
		f.Fatal(err)
	}
	pq.Cols, pq.Span = nil, 2
	var buf bytes.Buffer
	if err := WritePIRRecursiveQuery(&buf, []*pir.RecursiveQuery{pq}); err != nil {
		f.Fatal(err)
	}
	if _, body, err := ReadMessage(&buf); err == nil {
		f.Add(body)
	}
	store, err := docstore.New(4)
	if err != nil {
		f.Fatal(err)
	}
	for i, text := range []string{"alpha", "beta", "gamma gamma"} {
		if err := store.Add(i, []byte(text)); err != nil {
			f.Fatal(err)
		}
	}
	sn := store.Snapshot()
	f.Fuzz(func(t *testing.T, body []byte) {
		qs, err := DecodePIRRecursiveQuery(body)
		if err != nil {
			return
		}
		for i, q := range qs {
			for _, vec := range [][]*big.Int{q.Rows, q.Cols} {
				for j, v := range vec {
					if v == nil || v.Sign() <= 0 || v.Cmp(q.N) >= 0 {
						t.Fatalf("recursive query %d value %d escaped validation", i, j)
					}
				}
			}
		}
		// Serving-cost ceiling, as in FuzzPIRQuery: the decoder's caps
		// are deliberate protocol bounds far above what a fuzz iteration
		// can afford to scan.
		for _, q := range qs {
			if q.N.BitLen() > 512 || q.Width > 64 || len(qs)*q.Width > 128 {
				return
			}
		}
		a1, _, err1 := sn.AnswerRecursiveMultiExecCtx(context.Background(), qs, pir.Exec{Workers: 1, Window: 1})
		a2, _, err2 := sn.AnswerRecursiveMultiExecCtx(context.Background(), qs, pir.Exec{Workers: 3, Window: 4})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("execution tunings disagree on validity: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		modBytes := (qs[0].N.BitLen() + 7) / 8
		for i := range qs {
			want := 8 * sn.BlockSize() * 8 * modBytes
			if len(qs[i].Cols) == 0 {
				want = qs[i].GridCols * 8 * sn.BlockSize()
			}
			if len(a1[i].Gammas) != want {
				t.Fatalf("query %d: answer holds %d gammas, want %d", i, len(a1[i].Gammas), want)
			}
			for j := range a1[i].Gammas {
				g := a1[i].Gammas[j]
				if g == nil || g.Sign() < 0 || g.Cmp(qs[i].N) >= 0 {
					t.Fatalf("query %d gamma %d escaped the group", i, j)
				}
				if g.Cmp(a2[i].Gammas[j]) != 0 {
					t.Fatalf("query %d gamma %d: tunings diverge", i, j)
				}
			}
		}
	})
}

// FuzzReadMessage: arbitrary streams must produce clean errors.
func FuzzReadMessage(f *testing.F) {
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(body)+1+4 > len(data) {
			t.Fatalf("type %d: body longer than input", typ)
		}
	})
}

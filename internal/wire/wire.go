// Package wire frames the private-retrieval protocol messages for
// transport over a byte stream: the embellished query the client sends
// (term ids with encrypted flags plus the Benaloh public key) and the
// candidate response the server returns (document ids with encrypted
// scores). The paper's protocol is client-server; this package is what
// turns the in-process Algorithms 3-5 into a deployable service.
//
// Framing: every message is a 4-byte little-endian payload length, a
// type byte, and the body. Integers are vbyte-coded; big integers are
// length-prefixed big-endian bytes. Lengths are validated against hard
// caps before allocation, so a hostile peer cannot force huge
// allocations with a forged header.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"embellish/internal/benaloh"
	"embellish/internal/core"
	"embellish/internal/index"
	"embellish/internal/vbyte"
	"embellish/internal/wordnet"
)

// Message types.
const (
	TypeQuery         = 1
	TypeResponse      = 2
	TypeError         = 3
	TypeBatchQuery    = 4
	TypeBatchResponse = 5
)

// Caps on attacker-controlled sizes.
const (
	MaxFrame      = 64 << 20 // 64 MiB per message
	maxEntries    = 1 << 22
	maxCandidates = 1 << 24
	maxIntBytes   = 1 << 16 // 512 Kbit moduli are far beyond practical KeyLen
)

// WriteQuery frames and writes an embellished query.
func WriteQuery(w io.Writer, q *core.Query) error {
	return writeQueryTyped(w, TypeQuery, q)
}

// writeQueryTyped writes one query frame under the given type byte —
// the body layout is identical for genuine (TypeQuery) and decoy
// (TypeDecoyQuery) frames, which is the decoy indistinguishability
// contract: only the type byte differs.
func writeQueryTyped(w io.Writer, typ byte, q *core.Query) error {
	if q == nil || q.Pub == nil {
		return errors.New("wire: nil query")
	}
	var body []byte
	body = append(body, typ)
	body = appendBig(body, q.Pub.N)
	body = appendBig(body, q.Pub.G)
	body = appendBig(body, q.Pub.R)
	body = vbyte.Append(body, uint64(len(q.Entries)))
	for _, e := range q.Entries {
		body = vbyte.Append(body, uint64(e.Term))
		body = appendBig(body, e.Flag)
	}
	return writeFrame(w, body)
}

// WriteResponse frames and writes a candidate response.
func WriteResponse(w io.Writer, resp *core.Response, stats core.Stats) error {
	var body []byte
	body = append(body, TypeResponse)
	body = vbyte.Append(body, uint64(len(resp.Docs)))
	for _, d := range resp.Docs {
		body = vbyte.Append(body, uint64(d.Doc))
		body = appendBig(body, d.Enc)
	}
	body = vbyte.Append(body, uint64(stats.Postings))
	body = vbyte.Append(body, uint64(stats.IO.Seeks))
	body = vbyte.Append(body, uint64(stats.IO.Bytes))
	return writeFrame(w, body)
}

// WriteError frames and writes a server-side error message.
func WriteError(w io.Writer, msg string) error {
	if len(msg) > 1<<16 {
		msg = msg[:1<<16]
	}
	body := append([]byte{TypeError}, msg...)
	return writeFrame(w, body)
}

// ReadMessage reads one frame and returns its type byte and body.
func ReadMessage(r io.Reader) (byte, []byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame: %w", err)
	}
	return body[0], body[1:], nil
}

// DecodeQuery parses a TypeQuery body.
func DecodeQuery(body []byte) (*core.Query, error) {
	pubN, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: query N: %w", err)
	}
	pubG, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: query G: %w", err)
	}
	pubR, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: query R: %w", err)
	}
	if pubN.Sign() <= 0 || pubG.Sign() <= 0 || pubR.Sign() <= 0 {
		return nil, errors.New("wire: nonpositive key parameter")
	}
	n, used, err := vbyte.Decode(body)
	if err != nil || n > maxEntries {
		return nil, fmt.Errorf("wire: entry count: %w", orRange(err))
	}
	body = body[used:]
	q := &core.Query{Pub: &benaloh.PublicKey{N: pubN, G: pubG, R: pubR}}
	q.Entries = make([]core.QueryEntry, n)
	for i := range q.Entries {
		term, used, err := vbyte.Decode(body)
		if err != nil || term >= 1<<31 {
			return nil, fmt.Errorf("wire: entry %d term: %w", i, orRange(err))
		}
		body = body[used:]
		flag, rest, err := decodeBig(body)
		if err != nil {
			return nil, fmt.Errorf("wire: entry %d flag: %w", i, err)
		}
		if flag.Sign() <= 0 || flag.Cmp(pubN) >= 0 {
			return nil, fmt.Errorf("wire: entry %d flag outside Z_n", i)
		}
		body = rest
		q.Entries[i] = core.QueryEntry{Term: wordnet.TermID(term), Flag: flag}
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing bytes after query")
	}
	return q, nil
}

// Candidate is one decoded response document.
type Candidate struct {
	Doc index.DocID
	Enc *big.Int
}

// ResponseStats carries the server cost figures across the wire.
type ResponseStats struct {
	Postings int
	Seeks    int
	IOBytes  int
}

// DecodeResponse parses a TypeResponse body.
func DecodeResponse(body []byte) ([]Candidate, ResponseStats, error) {
	var st ResponseStats
	n, used, err := vbyte.Decode(body)
	if err != nil || n > maxCandidates {
		return nil, st, fmt.Errorf("wire: candidate count: %w", orRange(err))
	}
	body = body[used:]
	out := make([]Candidate, n)
	for i := range out {
		doc, used, err := vbyte.Decode(body)
		if err != nil || doc >= 1<<31 {
			return nil, st, fmt.Errorf("wire: candidate %d doc: %w", i, orRange(err))
		}
		body = body[used:]
		enc, rest, err := decodeBig(body)
		if err != nil {
			return nil, st, fmt.Errorf("wire: candidate %d score: %w", i, err)
		}
		body = rest
		out[i] = Candidate{Doc: index.DocID(doc), Enc: enc}
	}
	for _, dst := range []*int{&st.Postings, &st.Seeks, &st.IOBytes} {
		v, used, err := vbyte.Decode(body)
		if err != nil {
			return nil, st, fmt.Errorf("wire: stats: %w", err)
		}
		*dst = int(v)
		body = body[used:]
	}
	if len(body) != 0 {
		return nil, st, errors.New("wire: trailing bytes after response")
	}
	return out, st, nil
}

func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(body)))
	if _, err := w.Write(lenb[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func appendBig(dst []byte, v *big.Int) []byte {
	b := v.Bytes()
	dst = vbyte.Append(dst, uint64(len(b)))
	return append(dst, b...)
}

func decodeBig(buf []byte) (*big.Int, []byte, error) {
	n, used, err := vbyte.Decode(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > maxIntBytes {
		return nil, nil, fmt.Errorf("big integer of %d bytes exceeds limit", n)
	}
	buf = buf[used:]
	if uint64(len(buf)) < n {
		return nil, nil, errors.New("truncated big integer")
	}
	return new(big.Int).SetBytes(buf[:n]), buf[n:], nil
}

func orRange(err error) error {
	if err != nil {
		return err
	}
	return errors.New("value out of range")
}

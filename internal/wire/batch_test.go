package wire

import (
	"bytes"
	"math/big"
	"testing"

	"embellish/internal/benaloh"
	"embellish/internal/core"
	"embellish/internal/index"
	"embellish/internal/simio"
	"embellish/internal/vbyte"
)

func TestBatchQueryRoundTrip(t *testing.T) {
	k := sampleKey(t)
	qs := []*core.Query{sampleQuery(t, k), sampleQuery(t, k), sampleQuery(t, k)}
	var buf bytes.Buffer
	if err := WriteBatchQuery(&buf, qs); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeBatchQuery {
		t.Fatalf("type = %d", typ)
	}
	got, err := DecodeBatchQuery(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("decoded %d queries, want %d", len(got), len(qs))
	}
	for qi, q := range got {
		if q.Pub.N.Cmp(k.N) != 0 || q.Pub.G.Cmp(k.G) != 0 || q.Pub.R.Cmp(k.R) != 0 {
			t.Fatalf("query %d: public key mangled", qi)
		}
		if len(q.Entries) != len(qs[qi].Entries) {
			t.Fatalf("query %d: %d entries, want %d", qi, len(q.Entries), len(qs[qi].Entries))
		}
		for i, e := range q.Entries {
			want := qs[qi].Entries[i]
			if e.Term != want.Term || e.Flag.Cmp(want.Flag) != 0 {
				t.Fatalf("query %d entry %d mangled", qi, i)
			}
		}
	}
}

func TestBatchQueryRejectsMixedKeys(t *testing.T) {
	k1 := sampleKey(t)
	k2, err := benaloh.GenerateKey(nil, 192, benaloh.Pow3(8))
	if err != nil {
		t.Fatal(err)
	}
	qs := []*core.Query{sampleQuery(t, k1), sampleQuery(t, k2)}
	var buf bytes.Buffer
	if err := WriteBatchQuery(&buf, qs); err == nil {
		t.Fatal("mixed-key batch accepted")
	}
}

func TestBatchQueryRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatchQuery(&buf, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	k := sampleKey(t)
	mkResp := func(seed int64) (*core.Response, core.Stats) {
		resp := &core.Response{}
		for i := int64(0); i < 4; i++ {
			resp.Docs = append(resp.Docs, core.DocScore{
				Doc: index.DocID(seed*10 + i),
				Enc: new(big.Int).Add(k.N, big.NewInt(-seed-i-1)),
			})
		}
		var st core.Stats
		st.Postings = int(100 + seed)
		st.IO = simio.Accounting{Seeks: int(seed + 1), Bytes: int(1000 * (seed + 1))}
		return resp, st
	}
	var resps []*core.Response
	var stats []core.Stats
	for s := int64(0); s < 3; s++ {
		r, st := mkResp(s)
		resps = append(resps, r)
		stats = append(stats, st)
	}
	var buf bytes.Buffer
	if err := WriteBatchResponse(&buf, resps, stats); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeBatchResponse {
		t.Fatalf("type = %d", typ)
	}
	cands, rstats, err := DecodeBatchResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 || len(rstats) != 3 {
		t.Fatalf("decoded %d/%d, want 3/3", len(cands), len(rstats))
	}
	for qi := range cands {
		if len(cands[qi]) != len(resps[qi].Docs) {
			t.Fatalf("response %d: %d candidates, want %d", qi, len(cands[qi]), len(resps[qi].Docs))
		}
		for i, c := range cands[qi] {
			want := resps[qi].Docs[i]
			if c.Doc != want.Doc || c.Enc.Cmp(want.Enc) != 0 {
				t.Fatalf("response %d candidate %d mangled", qi, i)
			}
		}
		if rstats[qi].Postings != stats[qi].Postings ||
			rstats[qi].Seeks != stats[qi].IO.Seeks ||
			rstats[qi].IOBytes != stats[qi].IO.Bytes {
			t.Fatalf("response %d stats mangled: %+v", qi, rstats[qi])
		}
	}
}

func TestBatchQueryTruncated(t *testing.T) {
	k := sampleKey(t)
	qs := []*core.Query{sampleQuery(t, k)}
	var buf bytes.Buffer
	if err := WriteBatchQuery(&buf, qs); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(body); cut += 7 {
		if _, err := DecodeBatchQuery(body[:len(body)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
}

// TestDecodeRejectsInt32Overflow: a term or doc id of exactly 2^31
// wraps a wordnet.TermID/index.DocID (both int32) negative, which would
// panic the server on a negative slice index — decoders must reject it.
func TestDecodeRejectsInt32Overflow(t *testing.T) {
	k := sampleKey(t)
	q := sampleQuery(t, k)
	encode := func(term uint64) []byte {
		var body []byte
		for _, v := range []*big.Int{k.N, k.G, k.R} {
			b := v.Bytes()
			body = vbyte.Append(body, uint64(len(b)))
			body = append(body, b...)
		}
		body = vbyte.Append(body, 1) // one entry
		body = vbyte.Append(body, term)
		fb := q.Entries[0].Flag.Bytes()
		body = vbyte.Append(body, uint64(len(fb)))
		body = append(body, fb...)
		return body
	}
	if _, err := DecodeQuery(encode(1 << 31)); err == nil {
		t.Fatal("DecodeQuery accepted term 2^31 (wraps negative int32)")
	}
	if _, err := DecodeQuery(encode(1<<31 - 1)); err != nil {
		t.Fatalf("DecodeQuery rejected max valid term: %v", err)
	}

	// Same bound in the batch decoder: splice the hostile entry into a
	// single-query batch body.
	var batch []byte
	for _, v := range []*big.Int{k.N, k.G, k.R} {
		b := v.Bytes()
		batch = vbyte.Append(batch, uint64(len(b)))
		batch = append(batch, b...)
	}
	batch = vbyte.Append(batch, 1) // one query
	batch = vbyte.Append(batch, 1) // one entry
	batch = vbyte.Append(batch, 1<<31)
	fb := q.Entries[0].Flag.Bytes()
	batch = vbyte.Append(batch, uint64(len(fb)))
	batch = append(batch, fb...)
	if _, err := DecodeBatchQuery(batch); err == nil {
		t.Fatal("DecodeBatchQuery accepted term 2^31 (wraps negative int32)")
	}
}

package wire

import (
	"bytes"
	"strings"
	"testing"

	"embellish/internal/vbyte"
)

func TestAddDocsRoundTrip(t *testing.T) {
	docs := []DocText{
		{ID: 300, Text: "osteosarcoma therapy outcomes"},
		{ID: 301, Text: ""},
		{ID: 302, Text: strings.Repeat("x", 1000)},
	}
	var buf bytes.Buffer
	if err := WriteAddDocs(&buf, docs); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeAddDocs {
		t.Fatalf("type = %d, want %d", typ, TypeAddDocs)
	}
	got, err := DecodeAddDocs(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(docs) {
		t.Fatalf("decoded %d docs, want %d", len(got), len(docs))
	}
	for i := range docs {
		if got[i] != docs[i] {
			t.Fatalf("doc %d = %+v, want %+v", i, got[i], docs[i])
		}
	}
}

func TestDeleteDocsRoundTrip(t *testing.T) {
	ids := []uint32{0, 7, 299}
	var buf bytes.Buffer
	if err := WriteDeleteDocs(&buf, ids); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypeDeleteDocs {
		t.Fatalf("type = %d err = %v", typ, err)
	}
	got, err := DecodeDeleteDocs(body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("ids = %v, want %v", got, ids)
		}
	}
}

func TestAdminOKRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAdminOK(&buf, 1234, 5); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypeAdminOK {
		t.Fatalf("type = %d err = %v", typ, err)
	}
	live, segs, err := DecodeAdminOK(body)
	if err != nil || live != 1234 || segs != 5 {
		t.Fatalf("decoded %d/%d err %v", live, segs, err)
	}
}

func TestAdminDecodersRejectHostileInput(t *testing.T) {
	if _, err := DecodeAddDocs(nil); err == nil {
		t.Fatal("empty add body accepted")
	}
	if _, err := DecodeDeleteDocs(nil); err == nil {
		t.Fatal("empty delete body accepted")
	}
	// A count larger than the cap must be rejected before allocation.
	huge := vbyte.Append(nil, 1<<30)
	if _, err := DecodeAddDocs(huge); err == nil {
		t.Fatal("huge add count accepted")
	}
	if _, err := DecodeDeleteDocs(huge); err == nil {
		t.Fatal("huge delete count accepted")
	}
	// Ids at or past 2^31 would wrap int32 doc ids negative.
	bad := vbyte.Append(nil, 1)
	bad = vbyte.Append(bad, 1<<31)
	if _, err := DecodeDeleteDocs(bad); err == nil {
		t.Fatal("delete id >= 2^31 accepted")
	}
	// Truncated document text.
	trunc := vbyte.Append(nil, 1)
	trunc = vbyte.Append(trunc, 5)   // id
	trunc = vbyte.Append(trunc, 100) // text length
	trunc = append(trunc, "short"...)
	if _, err := DecodeAddDocs(trunc); err == nil {
		t.Fatal("truncated add text accepted")
	}
	// Trailing bytes.
	var buf bytes.Buffer
	if err := WriteDeleteDocs(&buf, []uint32{3}); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDeleteDocs(append(body, 0)); err == nil {
		t.Fatal("trailing delete bytes accepted")
	}
	// Oversized writes are refused client-side.
	if err := WriteAddDocs(&buf, make([]DocText, MaxAdminDocs+1)); err == nil {
		t.Fatal("oversized add accepted")
	}
}

package wire

import (
	"errors"
	"fmt"
	"io"

	"embellish/internal/vbyte"
)

// Cluster messages carry the coordinator tier over the same framed
// stream as the retrieval protocol: WAL shipping (a replica reports its
// journal position, the primary ships the missing record suffix) and
// the partition map a router serves so operators can inspect the
// topology. Like the admin and stats messages they are not part of the
// private-retrieval protocol itself — record bodies are the same
// crc-framed journal records the durability layer already persists,
// and the partition map names endpoints, never query contents.
//
// TypeWALPull: vbyte afterSeq — the replica's last applied sequence
// number; the primary answers with every journal record after it.
// TypeWALChunk: vbyte primarySeq | vbyte lastSeq | more byte | vbyte
// record-bytes length | raw record frames (u32 len | body | u32 crc,
// exactly as they sit in a wal segment). lastSeq == afterSeq with no
// records means the replica is caught up.
// TypeClusterMap: sent with an EMPTY body it is the request; the
// response is vbyte partition base | vbyte partition count | per
// partition: vbyte endpoint count, then length-prefixed endpoint
// strings (primary first, replicas after).
const (
	TypeWALPull    = 15
	TypeWALChunk   = 16
	TypeClusterMap = 17
)

// Cluster caps on attacker-controlled sizes.
const (
	// maxClusterPartitions bounds the partition table a router may
	// claim; doc-mod-n sharding past a thousand processes is far beyond
	// the deployment sizes the cost model covers.
	maxClusterPartitions = 1 << 10
	// maxClusterEndpoints bounds replicas per partition.
	maxClusterEndpoints = 1 << 4
	// maxEndpointBytes bounds one host:port string.
	maxEndpointBytes = 1 << 8
)

// WriteWALPull frames a replica's catch-up request: ship every journal
// record with sequence number greater than afterSeq.
func WriteWALPull(w io.Writer, afterSeq uint64) error {
	body := append([]byte{TypeWALPull}, vbyte.Append(nil, afterSeq)...)
	return writeFrame(w, body)
}

// DecodeWALPull parses a TypeWALPull body.
func DecodeWALPull(body []byte) (uint64, error) {
	after, used, err := vbyte.Decode(body)
	if err != nil {
		return 0, fmt.Errorf("wire: WAL pull seq: %w", err)
	}
	if len(body) != used {
		return 0, errors.New("wire: trailing bytes after WAL pull")
	}
	return after, nil
}

// WALChunk is one shipped slice of the primary's journal.
type WALChunk struct {
	// PrimarySeq is the primary's newest journaled sequence number at
	// the time of the pull — the replica's staleness target.
	PrimarySeq uint64
	// LastSeq is the sequence number of the last record in Records, or
	// the request's afterSeq when Records is empty (caught up).
	LastSeq uint64
	// More reports that the primary truncated the chunk at its size cap
	// and the replica should pull again immediately.
	More bool
	// Records holds zero or more raw wal record frames, concatenated —
	// the same crc-framed bytes the primary's segment files hold.
	Records []byte
}

// WriteWALChunk frames and writes one shipped journal slice.
func WriteWALChunk(w io.Writer, c WALChunk) error {
	var body []byte
	body = append(body, TypeWALChunk)
	body = vbyte.Append(body, c.PrimarySeq)
	body = vbyte.Append(body, c.LastSeq)
	if c.More {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	body = vbyte.Append(body, uint64(len(c.Records)))
	body = append(body, c.Records...)
	return writeFrame(w, body)
}

// DecodeWALChunk parses a TypeWALChunk body. The record bytes are not
// parsed here — wal.DecodeShipped owns the record grammar (and its
// crc checks); this decoder only validates the envelope.
func DecodeWALChunk(body []byte) (WALChunk, error) {
	var c WALChunk
	var used int
	var err error
	for _, dst := range []*uint64{&c.PrimarySeq, &c.LastSeq} {
		*dst, used, err = vbyte.Decode(body)
		if err != nil {
			return c, fmt.Errorf("wire: WAL chunk seq: %w", err)
		}
		body = body[used:]
	}
	if len(body) < 1 || body[0] > 1 {
		return c, errors.New("wire: WAL chunk continuation flag")
	}
	c.More = body[0] == 1
	body = body[1:]
	n, used, err := vbyte.Decode(body)
	if err != nil || n > uint64(MaxFrame) {
		return c, fmt.Errorf("wire: WAL chunk length: %w", orRange(err))
	}
	body = body[used:]
	if uint64(len(body)) != n {
		return c, errors.New("wire: WAL chunk length does not match body")
	}
	if n > 0 {
		c.Records = body
	}
	return c, nil
}

// ClusterMap is the router's partition topology: documents with global
// id g >= Base live on partition (g-Base) mod len(Partitions); ids
// below Base (the shared template corpus every partition loads) live on
// partition g mod len(Partitions). Each partition lists its endpoints
// primary first, read replicas after — the failover order.
type ClusterMap struct {
	Base       int
	Partitions [][]string
}

// WriteClusterMapRequest frames the client's empty topology request.
func WriteClusterMapRequest(w io.Writer) error {
	return writeFrame(w, []byte{TypeClusterMap})
}

// WriteClusterMap frames and writes the router's partition topology.
func WriteClusterMap(w io.Writer, m ClusterMap) error {
	if len(m.Partitions) == 0 || len(m.Partitions) > maxClusterPartitions {
		return fmt.Errorf("wire: cluster map with %d partitions", len(m.Partitions))
	}
	var body []byte
	body = append(body, TypeClusterMap)
	body = vbyte.Append(body, uint64(m.Base))
	body = vbyte.Append(body, uint64(len(m.Partitions)))
	for _, eps := range m.Partitions {
		if len(eps) == 0 || len(eps) > maxClusterEndpoints {
			return fmt.Errorf("wire: partition with %d endpoints", len(eps))
		}
		body = vbyte.Append(body, uint64(len(eps)))
		for _, ep := range eps {
			if len(ep) == 0 || len(ep) > maxEndpointBytes {
				return fmt.Errorf("wire: endpoint of %d bytes", len(ep))
			}
			body = vbyte.Append(body, uint64(len(ep)))
			body = append(body, ep...)
		}
	}
	return writeFrame(w, body)
}

// DecodeClusterMap parses a non-empty TypeClusterMap body.
func DecodeClusterMap(body []byte) (ClusterMap, error) {
	var m ClusterMap
	base, used, err := vbyte.Decode(body)
	if err != nil || base >= 1<<31 {
		return m, fmt.Errorf("wire: cluster map base: %w", orRange(err))
	}
	body = body[used:]
	nparts, used, err := vbyte.Decode(body)
	// Each partition costs at least 3 body bytes (endpoint count + one
	// endpoint's length + one byte), so a count past a third of the
	// remaining body is forged — reject before allocating.
	if err != nil || nparts == 0 || nparts > maxClusterPartitions || nparts*3 > uint64(len(body)) {
		return m, fmt.Errorf("wire: cluster map partition count: %w", orRange(err))
	}
	body = body[used:]
	m.Base = int(base)
	m.Partitions = make([][]string, nparts)
	for p := range m.Partitions {
		ne, used, err := vbyte.Decode(body)
		if err != nil || ne == 0 || ne > maxClusterEndpoints {
			return m, fmt.Errorf("wire: partition %d endpoint count: %w", p, orRange(err))
		}
		body = body[used:]
		eps := make([]string, ne)
		for i := range eps {
			n, used, err := vbyte.Decode(body)
			if err != nil || n == 0 || n > maxEndpointBytes || n > uint64(len(body[used:])) {
				return m, fmt.Errorf("wire: partition %d endpoint %d: %w", p, i, orRange(err))
			}
			body = body[used:]
			eps[i] = string(body[:n])
			body = body[n:]
		}
		m.Partitions[p] = eps
	}
	if len(body) != 0 {
		return m, errors.New("wire: trailing bytes after cluster map")
	}
	return m, nil
}

// WriteRaw frames an already-encoded message body under the given type
// byte — the router's forwarding primitive: a client frame is relayed
// to every partition verbatim, without a decode/re-encode round trip.
func WriteRaw(w io.Writer, typ byte, body []byte) error {
	framed := make([]byte, 0, 1+len(body))
	framed = append(framed, typ)
	framed = append(framed, body...)
	return writeFrame(w, framed)
}

// WriteCandidateResponse re-frames decoded candidates as a TypeResponse
// — the router's merge output. It is the byte-exact inverse of
// DecodeResponse composed with WriteResponse: a candidate list decoded,
// merged, and re-encoded is indistinguishable from one the engine
// produced directly, which is what keeps the cluster transparent to
// clients.
func WriteCandidateResponse(w io.Writer, cands []Candidate, st ResponseStats) error {
	body := appendCandidates([]byte{TypeResponse}, cands, st)
	return writeFrame(w, body)
}

// WriteCandidateBatchResponse re-frames decoded per-query candidate
// sets as a TypeBatchResponse, in batch order.
func WriteCandidateBatchResponse(w io.Writer, cands [][]Candidate, stats []ResponseStats) error {
	if len(cands) != len(stats) {
		return errors.New("wire: candidates and stats length mismatch")
	}
	var body []byte
	body = append(body, TypeBatchResponse)
	body = vbyte.Append(body, uint64(len(cands)))
	for i := range cands {
		body = appendCandidates(body, cands[i], stats[i])
	}
	return writeFrame(w, body)
}

// appendCandidates encodes one candidate set + stats tail, the shared
// layout of TypeResponse and each TypeBatchResponse member.
func appendCandidates(body []byte, cands []Candidate, st ResponseStats) []byte {
	body = vbyte.Append(body, uint64(len(cands)))
	for _, c := range cands {
		body = vbyte.Append(body, uint64(c.Doc))
		body = appendBig(body, c.Enc)
	}
	body = vbyte.Append(body, uint64(st.Postings))
	body = vbyte.Append(body, uint64(st.Seeks))
	body = vbyte.Append(body, uint64(st.IOBytes))
	return body
}

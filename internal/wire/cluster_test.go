package wire

import (
	"bytes"
	"math/big"
	"testing"
)

func TestWALPullRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 127, 128, 1 << 40} {
		var buf bytes.Buffer
		if err := WriteWALPull(&buf, seq); err != nil {
			t.Fatal(err)
		}
		typ, body, err := ReadMessage(&buf)
		if err != nil || typ != TypeWALPull {
			t.Fatalf("type %d err %v", typ, err)
		}
		got, err := DecodeWALPull(body)
		if err != nil || got != seq {
			t.Fatalf("seq %d round-tripped to %d (%v)", seq, got, err)
		}
	}
}

func TestWALPullRejectsTrailing(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWALPull(&buf, 7); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWALPull(append(body, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeWALPull(nil); err == nil {
		t.Fatal("empty body accepted")
	}
}

func TestWALChunkRoundTrip(t *testing.T) {
	for _, c := range []WALChunk{
		{PrimarySeq: 9, LastSeq: 9, More: false},
		{PrimarySeq: 9, LastSeq: 5, More: true, Records: []byte{1, 2, 3, 4}},
		{PrimarySeq: 1 << 50, LastSeq: 1<<50 - 1, More: false, Records: bytes.Repeat([]byte{0xAB}, 300)},
	} {
		var buf bytes.Buffer
		if err := WriteWALChunk(&buf, c); err != nil {
			t.Fatal(err)
		}
		typ, body, err := ReadMessage(&buf)
		if err != nil || typ != TypeWALChunk {
			t.Fatalf("type %d err %v", typ, err)
		}
		got, err := DecodeWALChunk(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.PrimarySeq != c.PrimarySeq || got.LastSeq != c.LastSeq || got.More != c.More || !bytes.Equal(got.Records, c.Records) {
			t.Fatalf("chunk mangled: %+v vs %+v", got, c)
		}
	}
}

func TestWALChunkRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWALChunk(&buf, WALChunk{PrimarySeq: 3, LastSeq: 3, Records: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string][]byte{
		"empty":        nil,
		"trailing":     append(append([]byte(nil), body...), 0),
		"truncated":    body[:len(body)-1],
		"bad-boolean":  {3, 3, 7, 0},
		"short-length": {3, 3, 0, 5, 1},
	} {
		if _, err := DecodeWALChunk(mut); err == nil {
			t.Fatalf("%s chunk accepted", name)
		}
	}
}

func TestClusterMapRoundTrip(t *testing.T) {
	m := ClusterMap{
		Base: 120,
		Partitions: [][]string{
			{"10.0.0.1:7878", "10.0.0.2:7878"},
			{"10.0.0.3:7878"},
			{"10.0.0.4:7878", "10.0.0.5:7878", "10.0.0.6:7878"},
		},
	}
	var buf bytes.Buffer
	if err := WriteClusterMap(&buf, m); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypeClusterMap {
		t.Fatalf("type %d err %v", typ, err)
	}
	got, err := DecodeClusterMap(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Base != m.Base || len(got.Partitions) != len(m.Partitions) {
		t.Fatalf("map mangled: %+v", got)
	}
	for p := range m.Partitions {
		if len(got.Partitions[p]) != len(m.Partitions[p]) {
			t.Fatalf("partition %d endpoint count", p)
		}
		for i := range m.Partitions[p] {
			if got.Partitions[p][i] != m.Partitions[p][i] {
				t.Fatalf("partition %d endpoint %d: %q", p, i, got.Partitions[p][i])
			}
		}
	}
}

func TestClusterMapRequestIsEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClusterMapRequest(&buf); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypeClusterMap || len(body) != 0 {
		t.Fatalf("type %d body %d err %v", typ, len(body), err)
	}
}

func TestClusterMapRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClusterMap(&buf, ClusterMap{Partitions: [][]string{{"a:1"}}}); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string][]byte{
		"empty":           nil,
		"trailing":        append(append([]byte(nil), body...), 0),
		"zero-partitions": {0, 0},
		"forged-count":    {0, 200, 1},
	} {
		if _, err := DecodeClusterMap(mut); err == nil {
			t.Fatalf("%s map accepted", name)
		}
	}
	if err := WriteClusterMap(&buf, ClusterMap{}); err == nil {
		t.Fatal("empty map encoded")
	}
	if err := WriteClusterMap(&buf, ClusterMap{Partitions: [][]string{{}}}); err == nil {
		t.Fatal("endpointless partition encoded")
	}
}

func TestWriteRawMatchesTypedWriter(t *testing.T) {
	// The router's forward path must put the same bytes on the wire as
	// the client did: frame(type|body) == the original frame.
	var orig bytes.Buffer
	if err := WriteWALPull(&orig, 42); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var fwd bytes.Buffer
	if err := WriteRaw(&fwd, typ, body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fwd.Bytes(), orig.Bytes()) {
		t.Fatalf("forwarded frame differs:\n%x\n%x", fwd.Bytes(), orig.Bytes())
	}
}

func TestWriteCandidateResponseInvertsDecode(t *testing.T) {
	// Byte-exactness is the cluster-transparency seam: decode, then
	// re-encode, and the frame is identical.
	cands := []Candidate{
		{Doc: 3, Enc: big.NewInt(123456789)},
		{Doc: 40, Enc: new(big.Int).Lsh(big.NewInt(987), 200)},
	}
	st := ResponseStats{Postings: 7, Seeks: 2, IOBytes: 999}
	var first bytes.Buffer
	if err := WriteCandidateResponse(&first, cands, st); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(bytes.NewReader(first.Bytes()))
	if err != nil || typ != TypeResponse {
		t.Fatalf("type %d err %v", typ, err)
	}
	gotCands, gotSt, err := DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteCandidateResponse(&second, gotCands, gotSt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("decode/re-encode is not byte-identical")
	}
}

func TestWriteCandidateBatchResponseRoundTrip(t *testing.T) {
	cands := [][]Candidate{
		{{Doc: 1, Enc: big.NewInt(10)}, {Doc: 2, Enc: big.NewInt(20)}},
		{},
		{{Doc: 9, Enc: big.NewInt(90)}},
	}
	stats := []ResponseStats{{Postings: 1}, {Seeks: 2}, {IOBytes: 3}}
	var buf bytes.Buffer
	if err := WriteCandidateBatchResponse(&buf, cands, stats); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypeBatchResponse {
		t.Fatalf("type %d err %v", typ, err)
	}
	gotCands, gotStats, err := DecodeBatchResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCands) != 3 || len(gotStats) != 3 {
		t.Fatalf("%d/%d queries decoded", len(gotCands), len(gotStats))
	}
	for qi := range cands {
		if len(gotCands[qi]) != len(cands[qi]) {
			t.Fatalf("query %d: %d candidates", qi, len(gotCands[qi]))
		}
		for i := range cands[qi] {
			if gotCands[qi][i].Doc != cands[qi][i].Doc || gotCands[qi][i].Enc.Cmp(cands[qi][i].Enc) != 0 {
				t.Fatalf("query %d candidate %d mangled", qi, i)
			}
		}
		if gotStats[qi] != stats[qi] {
			t.Fatalf("query %d stats %+v", qi, gotStats[qi])
		}
	}
	if err := WriteCandidateBatchResponse(&buf, cands, stats[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

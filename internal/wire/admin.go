package wire

import (
	"errors"
	"fmt"
	"io"

	"embellish/internal/vbyte"
)

// Admin messages carry online corpus updates (Live index appends and
// deletions) to a server that opted in to them. They are deliberately
// NOT part of the private-retrieval protocol: updates come from the
// corpus owner, not from searching users, and a server refuses them
// unless explicitly configured (the serving layer's AllowUpdates flag).
//
// TypeAddDocs:    count | per doc: id vbyte, text length vbyte, text.
// TypeDeleteDocs: count | ids as vbytes.
// TypeAdminOK:    live doc count vbyte | segment count vbyte.

// Admin message types (6-8; 1-5 are the retrieval protocol).
const (
	TypeAddDocs    = 6
	TypeDeleteDocs = 7
	TypeAdminOK    = 8
)

// Admin caps on attacker-controlled sizes.
const (
	// MaxAdminDocs caps documents (or deletions) per admin frame;
	// larger ingests batch across frames.
	MaxAdminDocs = 1 << 12
	// maxDocTextBytes caps one document's text.
	maxDocTextBytes = 1 << 20
)

// DocText is one document of a TypeAddDocs frame.
type DocText struct {
	ID   uint32
	Text string
}

// WriteAddDocs frames and writes an online document-add request.
func WriteAddDocs(w io.Writer, docs []DocText) error {
	if len(docs) == 0 {
		return errors.New("wire: empty add")
	}
	if len(docs) > MaxAdminDocs {
		return fmt.Errorf("wire: add of %d docs exceeds limit %d", len(docs), MaxAdminDocs)
	}
	var body []byte
	body = append(body, TypeAddDocs)
	body = vbyte.Append(body, uint64(len(docs)))
	for _, d := range docs {
		if len(d.Text) > maxDocTextBytes {
			return fmt.Errorf("wire: document %d text of %d bytes exceeds limit", d.ID, len(d.Text))
		}
		body = vbyte.Append(body, uint64(d.ID))
		body = vbyte.Append(body, uint64(len(d.Text)))
		body = append(body, d.Text...)
	}
	return writeFrame(w, body)
}

// DecodeAddDocs parses a TypeAddDocs body.
func DecodeAddDocs(body []byte) ([]DocText, error) {
	n, used, err := vbyte.Decode(body)
	if err != nil || n == 0 || n > MaxAdminDocs {
		return nil, fmt.Errorf("wire: add count: %w", orRange(err))
	}
	body = body[used:]
	out := make([]DocText, n)
	for i := range out {
		id, used, err := vbyte.Decode(body)
		if err != nil || id >= 1<<31 {
			return nil, fmt.Errorf("wire: add doc %d id: %w", i, orRange(err))
		}
		body = body[used:]
		tlen, used, err := vbyte.Decode(body)
		if err != nil || tlen > maxDocTextBytes {
			return nil, fmt.Errorf("wire: add doc %d text length: %w", i, orRange(err))
		}
		body = body[used:]
		if uint64(len(body)) < tlen {
			return nil, fmt.Errorf("wire: add doc %d text truncated", i)
		}
		out[i] = DocText{ID: uint32(id), Text: string(body[:tlen])}
		body = body[tlen:]
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing bytes after add")
	}
	return out, nil
}

// WriteDeleteDocs frames and writes an online document-delete request.
func WriteDeleteDocs(w io.Writer, ids []uint32) error {
	if len(ids) == 0 {
		return errors.New("wire: empty delete")
	}
	if len(ids) > MaxAdminDocs {
		return fmt.Errorf("wire: delete of %d ids exceeds limit %d", len(ids), MaxAdminDocs)
	}
	var body []byte
	body = append(body, TypeDeleteDocs)
	body = vbyte.Append(body, uint64(len(ids)))
	for _, id := range ids {
		body = vbyte.Append(body, uint64(id))
	}
	return writeFrame(w, body)
}

// DecodeDeleteDocs parses a TypeDeleteDocs body.
func DecodeDeleteDocs(body []byte) ([]uint32, error) {
	n, used, err := vbyte.Decode(body)
	if err != nil || n == 0 || n > MaxAdminDocs {
		return nil, fmt.Errorf("wire: delete count: %w", orRange(err))
	}
	body = body[used:]
	out := make([]uint32, n)
	for i := range out {
		id, used, err := vbyte.Decode(body)
		if err != nil || id >= 1<<31 {
			return nil, fmt.Errorf("wire: delete id %d: %w", i, orRange(err))
		}
		body = body[used:]
		out[i] = uint32(id)
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing bytes after delete")
	}
	return out, nil
}

// WriteAdminOK frames and writes the acknowledgement of an applied
// admin request: the server's live document and segment counts.
func WriteAdminOK(w io.Writer, liveDocs, segments int) error {
	var body []byte
	body = append(body, TypeAdminOK)
	body = vbyte.Append(body, uint64(liveDocs))
	body = vbyte.Append(body, uint64(segments))
	return writeFrame(w, body)
}

// DecodeAdminOK parses a TypeAdminOK body.
func DecodeAdminOK(body []byte) (liveDocs, segments int, err error) {
	for _, dst := range []*int{&liveDocs, &segments} {
		v, used, err := vbyte.Decode(body)
		if err != nil || v > 1<<31 {
			return 0, 0, fmt.Errorf("wire: admin ok: %w", orRange(err))
		}
		*dst = int(v)
		body = body[used:]
	}
	if len(body) != 0 {
		return 0, 0, errors.New("wire: trailing bytes after admin ok")
	}
	return liveDocs, segments, nil
}

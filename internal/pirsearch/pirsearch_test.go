package pirsearch

import (
	"math/rand"
	"testing"

	"embellish/internal/benaloh"
	"embellish/internal/core"
	"embellish/internal/index"
	"embellish/internal/pir"
	"embellish/internal/testenv"
	"embellish/internal/wordnet"
)

var (
	cachedWorld *testenv.World
	cachedKey   *pir.ClientKey
)

func world(t *testing.T) (*testenv.World, *pir.ClientKey) {
	t.Helper()
	if cachedWorld == nil {
		cachedWorld = testenv.BuildWorld(testenv.Options{Seed: 91, BktSz: 4})
		k, err := pir.GenerateKey(testenv.NewDetRand("pirsearch-test"), 256)
		if err != nil {
			t.Fatalf("key generation: %v", err)
		}
		cachedKey = k
	}
	return cachedWorld, cachedKey
}

func pickGenuine(w *testenv.World, rng *rand.Rand, n int) []wordnet.TermID {
	out := make([]wordnet.TermID, 0, n)
	seen := map[wordnet.TermID]bool{}
	for len(out) < n {
		t := w.Searchable[rng.Intn(len(w.Searchable))]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	list := []index.Posting{
		{Doc: 3, Quantized: 17},
		{Doc: 999, Quantized: 1},
		{Doc: 0, Quantized: 255},
	}
	colBytes := 4 + len(list)*postingWire + 24 // extra padding
	buf := encodeList(list, colBytes)
	if len(buf) != colBytes {
		t.Fatalf("encoded %d bytes, want %d", len(buf), colBytes)
	}
	got, err := decodeList(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(list) {
		t.Fatalf("decoded %d postings, want %d", len(got), len(list))
	}
	for i := range list {
		if got[i] != list[i] {
			t.Fatalf("posting %d: got %+v, want %+v", i, got[i], list[i])
		}
	}
}

func TestDecodeListCorruption(t *testing.T) {
	if _, err := decodeList(nil); err == nil {
		t.Fatal("nil column accepted")
	}
	if _, err := decodeList([]byte{0, 0}); err == nil {
		t.Fatal("short column accepted")
	}
	// Header claims more postings than the column holds.
	bad := make([]byte, 12)
	bad[3] = 200
	if _, err := decodeList(bad); err == nil {
		t.Fatal("oversized posting count accepted")
	}
}

func TestEmptyListEncodes(t *testing.T) {
	buf := encodeList(nil, 4)
	got, err := decodeList(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty list decoded to %d postings", len(got))
	}
}

func TestServerMatrixShape(t *testing.T) {
	w, _ := world(t)
	srv := NewServer(w.Index, w.Org, w.DB)
	if len(srv.matrices) != w.Org.NumBuckets() {
		t.Fatalf("%d matrices, want %d buckets", len(srv.matrices), w.Org.NumBuckets())
	}
	for b := 0; b < w.Org.NumBuckets(); b++ {
		m := srv.matrices[b]
		if m.Cols != len(w.Org.Bucket(b)) {
			t.Fatalf("bucket %d: %d cols, want %d terms", b, m.Cols, len(w.Org.Bucket(b)))
		}
		if m.Rows != srv.listBytes[b]*8 {
			t.Fatalf("bucket %d: %d rows, want %d bits", b, m.Rows, srv.listBytes[b]*8)
		}
		// Padded length covers the longest list in the bucket.
		for _, tm := range w.Org.Bucket(b) {
			if ti, ok := w.Index.LookupTerm(w.DB.Lemma(tm)); ok {
				need := 4 + len(w.Index.List(ti))*postingWire
				if need > srv.listBytes[b] {
					t.Fatalf("bucket %d: column %d bytes exceed padded %d", b, need, srv.listBytes[b])
				}
			}
		}
	}
}

func TestRetrieveBucketOutOfRange(t *testing.T) {
	w, k := world(t)
	srv := NewServer(w.Index, w.Org, w.DB)
	q, err := k.NewQuery(testenv.NewDetRand("q"), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Retrieve(-1, q); err == nil {
		t.Fatal("negative bucket accepted")
	}
	if _, _, err := srv.Retrieve(w.Org.NumBuckets(), q); err == nil {
		t.Fatal("out-of-range bucket accepted")
	}
}

// TestPIRFetchMatchesPlaintextList verifies that a single PIR run recovers
// exactly the target term's inverted list.
func TestPIRFetchMatchesPlaintextList(t *testing.T) {
	w, k := world(t)
	srv := NewServer(w.Index, w.Org, w.DB)
	c := NewClient(w.Org, k)
	c.CryptoRand = testenv.NewDetRand("fetch")

	rng := rand.New(rand.NewSource(3))
	target := pickGenuine(w, rng, 1)[0]
	ranked, _, err := c.Search(srv, []wordnet.TermID{target}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ti, ok := w.Index.LookupTerm(w.DB.Lemma(target))
	if !ok {
		t.Fatal("target not in index")
	}
	want := map[index.DocID]int64{}
	for _, p := range w.Index.List(ti) {
		want[p.Doc] = int64(p.Quantized)
	}
	if len(ranked) != len(want) {
		t.Fatalf("fetched %d docs, want %d", len(ranked), len(want))
	}
	for _, r := range ranked {
		if want[r.Doc] != r.Score {
			t.Fatalf("doc %d: score %d, want %d", r.Doc, r.Score, want[r.Doc])
		}
	}
}

// TestPIRSearchMatchesPR runs the same queries through the PR scheme and
// the PIR baseline and requires identical rankings — the precondition for
// the Figure 7/8 comparison to be apples-to-apples.
func TestPIRSearchMatchesPR(t *testing.T) {
	w, k := world(t)
	srv := NewServer(w.Index, w.Org, w.DB)
	c := NewClient(w.Org, k)
	c.CryptoRand = testenv.NewDetRand("match")

	bk, err := benaloh.GenerateKey(testenv.NewDetRand("benaloh"), 256, benaloh.Pow3(9))
	if err != nil {
		t.Fatal(err)
	}
	prClient := core.NewClient(w.Org, bk, 7)
	prClient.CryptoRand = testenv.NewDetRand("pr-rand")
	prServer := core.NewServer(w.Index, w.Org, w.DB)

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 4; trial++ {
		genuine := pickGenuine(w, rng, 2+rng.Intn(2))
		pirRanked, _, err := c.Search(srv, genuine, 10)
		if err != nil {
			t.Fatal(err)
		}
		q, _, err := prClient.Embellish(genuine)
		if err != nil {
			t.Fatal(err)
		}
		resp, _, err := prServer.Process(q)
		if err != nil {
			t.Fatal(err)
		}
		prRanked, err := prClient.PostFilter(resp, 10)
		if err != nil {
			t.Fatal(err)
		}
		// PR may rank extra zero-score decoy docs; compare the positive
		// prefix, which must agree exactly.
		for i := range pirRanked {
			if pirRanked[i].Score == 0 {
				break
			}
			if i >= len(prRanked) || prRanked[i].Doc != pirRanked[i].Doc || prRanked[i].Score != pirRanked[i].Score {
				t.Fatalf("trial %d rank %d: PIR (%d,%d) vs PR (%v)", trial, i,
					pirRanked[i].Doc, pirRanked[i].Score, prRanked[i])
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	w, k := world(t)
	srv := NewServer(w.Index, w.Org, w.DB)
	c := NewClient(w.Org, k)
	c.CryptoRand = testenv.NewDetRand("stats")

	rng := rand.New(rand.NewSource(11))
	genuine := pickGenuine(w, rng, 3)
	_, st, err := c.Search(srv, genuine, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != len(genuine) {
		t.Fatalf("Runs = %d, want one per genuine term = %d", st.Runs, len(genuine))
	}
	if st.QueryBytes <= 0 || st.AnswerBytes <= 0 {
		t.Fatalf("traffic accounting empty: %+v", st)
	}
	if st.ModMuls <= 0 || st.IO.Seeks != countBuckets(w, genuine, st.Runs) {
		t.Fatalf("work accounting off: %+v", st)
	}
	if c.QRTests != st.RowsReturned {
		t.Fatalf("QRTests = %d, rows = %d", c.QRTests, st.RowsReturned)
	}
}

// countBuckets: PIR seeks once per protocol run (a run reads the whole
// bucket matrix), so seeks == runs.
func countBuckets(_ *testenv.World, _ []wordnet.TermID, runs int) int { return runs }

func TestUnknownGenuineTermSkipped(t *testing.T) {
	w, k := world(t)
	srv := NewServer(w.Index, w.Org, w.DB)
	c := NewClient(w.Org, k)
	c.CryptoRand = testenv.NewDetRand("unknown")
	ranked, st, err := c.Search(srv, []wordnet.TermID{wordnet.TermID(1 << 20)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 0 || st.Runs != 0 {
		t.Fatalf("out-of-dictionary query ran %d protocols, returned %d docs", st.Runs, len(ranked))
	}
}

// TestMultipleGenuineTermsSameBucket verifies the protocol's documented
// weakness: two genuine terms in one bucket need two protocol runs.
func TestMultipleGenuineTermsSameBucket(t *testing.T) {
	w, k := world(t)
	srv := NewServer(w.Index, w.Org, w.DB)
	c := NewClient(w.Org, k)
	c.CryptoRand = testenv.NewDetRand("samebucket")
	b0 := w.Org.Bucket(0)
	genuine := []wordnet.TermID{b0[0], b0[1]}
	_, st, err := c.Search(srv, genuine, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 2 {
		t.Fatalf("Runs = %d, want 2 (one per genuine term even when co-bucketed)", st.Runs)
	}
}

func TestTrafficGrowsWithBucketRows(t *testing.T) {
	// Answer traffic is KeyLen × max list length in the bucket — padding
	// means a bucket with one long list charges every retrieval for it.
	w, k := world(t)
	srv := NewServer(w.Index, w.Org, w.DB)
	c := NewClient(w.Org, k)
	c.CryptoRand = testenv.NewDetRand("traffic")
	genuine := pickGenuine(w, rand.New(rand.NewSource(17)), 1)
	b, _ := w.Org.BucketOf(genuine[0])
	_, st, err := c.Search(srv, genuine, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.AnswerBytes != k.AnswerBytes(srv.Rows(b)) {
		t.Fatalf("AnswerBytes = %d, want %d", st.AnswerBytes, k.AnswerBytes(srv.Rows(b)))
	}
}

// Package pirsearch implements the alternate retrieval method of Section
// 4: fetching the genuine terms' inverted lists through Kushilevitz-
// Ostrovsky PIR, with each bucket treated as a private database. The
// inverted lists within a bucket are padded to a common length; the
// database matrix has one column per bucket term and one row per bit of
// the padded lists. Each protocol run retrieves exactly one list, so a
// query with multiple genuine terms in one bucket must execute the
// protocol repeatedly — the scaling weakness Figures 7 and 8 expose.
//
// After fetching the genuine lists, the client computes relevance scores
// locally; the server never sees which column was touched.
package pirsearch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"embellish/internal/bucket"
	"embellish/internal/index"
	"embellish/internal/pir"
	"embellish/internal/simio"
	"embellish/internal/wordnet"
)

// Server hosts one PIR matrix per bucket.
type Server struct {
	Org  *bucket.Organization
	Disk simio.Model

	matrices []*pir.Matrix
	// listBytes[b] is the padded per-column byte length of bucket b.
	listBytes []int
	// rawBytes[b] is the physical footprint of bucket b (its matrix).
	rawBytes []int
}

// postingWire is the serialized size of one posting: 4-byte doc id +
// 4-byte quantized impact.
const postingWire = 8

// NewServer builds the per-bucket matrices from the index. db maps
// organization terms to dictionary strings, exactly as core.NewServer
// does, so both schemes serve identical data.
func NewServer(ix *index.Index, org *bucket.Organization, db *wordnet.Database) *Server {
	s := &Server{Org: org, Disk: simio.Default()}
	s.matrices = make([]*pir.Matrix, org.NumBuckets())
	s.listBytes = make([]int, org.NumBuckets())
	s.rawBytes = make([]int, org.NumBuckets())
	for b := 0; b < org.NumBuckets(); b++ {
		terms := org.Bucket(b)
		// Pad every list to the bucket maximum (the paper's requirement).
		maxLen := 0
		lists := make([][]index.Posting, len(terms))
		for i, t := range terms {
			if ti, ok := ix.LookupTerm(db.Lemma(t)); ok {
				lists[i] = ix.List(ti)
			}
			if n := len(lists[i]); n > maxLen {
				maxLen = n
			}
		}
		// A one-posting minimum keeps empty buckets well-formed.
		if maxLen == 0 {
			maxLen = 1
		}
		colBytes := 4 + maxLen*postingWire // 4-byte true length header
		m := pir.NewMatrix(colBytes*8, len(terms))
		for i, list := range lists {
			m.SetColumn(i, encodeList(list, colBytes))
		}
		s.matrices[b] = m
		s.listBytes[b] = colBytes
		s.rawBytes[b] = colBytes * len(terms)
	}
	return s
}

// encodeList serializes a list into exactly colBytes bytes: a 4-byte
// big-endian posting count, then doc/impact pairs, zero-padded.
func encodeList(list []index.Posting, colBytes int) []byte {
	buf := make([]byte, colBytes)
	binary.BigEndian.PutUint32(buf, uint32(len(list)))
	off := 4
	for _, p := range list {
		binary.BigEndian.PutUint32(buf[off:], uint32(p.Doc))
		binary.BigEndian.PutUint32(buf[off+4:], uint32(p.Quantized))
		off += postingWire
	}
	return buf
}

// decodeList reverses encodeList.
func decodeList(buf []byte) ([]index.Posting, error) {
	if len(buf) < 4 {
		return nil, errors.New("pirsearch: short column")
	}
	n := int(binary.BigEndian.Uint32(buf))
	if 4+n*postingWire > len(buf) {
		return nil, fmt.Errorf("pirsearch: corrupt column header (%d postings, %d bytes)", n, len(buf))
	}
	out := make([]index.Posting, n)
	off := 4
	for i := 0; i < n; i++ {
		out[i] = index.Posting{
			Doc:       index.DocID(binary.BigEndian.Uint32(buf[off:])),
			Quantized: int32(binary.BigEndian.Uint32(buf[off+4:])),
		}
		off += postingWire
	}
	return out, nil
}

// Stats aggregates the cost of answering PIR retrievals.
type Stats struct {
	ModMuls      int
	Runs         int // protocol executions (one per genuine term)
	IO           simio.Accounting
	QueryBytes   int
	AnswerBytes  int
	RowsReturned int
	// ServerNS and ClientNS split the wall-clock time of Search between
	// the server protocol and the user-side work (query generation,
	// QR/QNR decoding, scoring), feeding the Figure 7/8 CPU panels.
	ServerNS int64
	ClientNS int64
}

// Retrieve answers one PIR run against bucket b for the column the query
// targets (which the server cannot determine).
func (s *Server) Retrieve(b int, q *pir.Query) (*pir.Answer, Stats, error) {
	if b < 0 || b >= len(s.matrices) {
		return nil, Stats{}, fmt.Errorf("pirsearch: bucket %d out of range", b)
	}
	var st Stats
	st.Runs = 1
	st.IO.Charge(s.rawBytes[b])
	ans, ps, err := s.matrices[b].Process(q)
	if err != nil {
		return nil, st, err
	}
	st.ModMuls = ps.ModMuls
	st.RowsReturned = len(ans.Gammas)
	return ans, st, nil
}

// Rows returns the matrix height of bucket b, for traffic accounting.
func (s *Server) Rows(b int) int { return s.matrices[b].Rows }

// Client executes the full PIR retrieval workflow for a query.
type Client struct {
	Org *bucket.Organization
	Key *pir.ClientKey
	// CryptoRand sources the QR/QNR sampling; nil selects crypto/rand.
	CryptoRand io.Reader
	// QRTests counts the quadratic-residuosity tests performed during
	// decoding, the dominant user-side cost.
	QRTests int
}

// NewClient builds a PIR client over the organization.
func NewClient(org *bucket.Organization, key *pir.ClientKey) *Client {
	return &Client{Org: org, Key: key}
}

// Search privately fetches the inverted list of every genuine term (one
// PIR run each) and scores the union locally. It returns the ranked
// documents plus combined client/server statistics.
func (c *Client) Search(srv *Server, genuine []wordnet.TermID, k int) ([]Ranked, Stats, error) {
	var agg Stats
	acc := make(map[index.DocID]int64)
	start := time.Now()
	for _, t := range genuine {
		b, ok := c.Org.BucketOf(t)
		if !ok {
			continue
		}
		slot, _ := c.Org.SlotOf(t)
		cols := len(c.Org.Bucket(b))
		q, err := c.Key.NewQuery(c.CryptoRand, cols, slot)
		if err != nil {
			return nil, agg, err
		}
		agg.QueryBytes += c.Key.QueryBytes(cols)
		srvStart := time.Now()
		ans, st, err := srv.Retrieve(b, q)
		agg.ServerNS += time.Since(srvStart).Nanoseconds()
		if err != nil {
			return nil, agg, err
		}
		agg.ModMuls += st.ModMuls
		agg.Runs += st.Runs
		agg.IO.Seeks += st.IO.Seeks
		agg.IO.Bytes += st.IO.Bytes
		agg.RowsReturned += st.RowsReturned
		agg.AnswerBytes += c.Key.AnswerBytes(len(ans.Gammas))

		bits := c.Key.Decode(ans)
		c.QRTests += len(bits)
		list, err := decodeList(pir.ColumnBytes(bits))
		if err != nil {
			return nil, agg, fmt.Errorf("pirsearch: term %d: %w", t, err)
		}
		for _, p := range list {
			acc[p.Doc] += int64(p.Quantized)
		}
	}
	out := make([]Ranked, 0, len(acc))
	for d, s := range acc {
		out = append(out, Ranked{Doc: d, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	agg.ClientNS = time.Since(start).Nanoseconds() - agg.ServerNS
	return out, agg, nil
}

// Ranked mirrors core.Ranked so the two schemes' outputs can be compared
// directly in tests and experiments.
type Ranked struct {
	Doc   index.DocID
	Score int64
}

// Package testenv assembles small end-to-end worlds (lexicon → corpus →
// index → bucket organization) shared by the integration tests of the
// core, pirsearch and privacy packages, plus deterministic randomness
// helpers for reproducible cryptographic keys in tests.
package testenv

import (
	"embellish/internal/bucket"
	"embellish/internal/corpus"
	"embellish/internal/detrand"
	"embellish/internal/index"
	"embellish/internal/sequence"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

// DetRand is a deterministic byte stream for reproducible key generation
// in tests. NOT cryptographically secure.
type DetRand = detrand.Reader

// NewDetRand seeds a deterministic stream.
func NewDetRand(seed string) *DetRand { return detrand.New(seed) }

// World is a fully wired test universe.
type World struct {
	DB    *wordnet.Database
	Corp  *corpus.Corpus
	Index *index.Index
	Org   *bucket.Organization
	// Searchable is the dictionary ∩ corpus vocabulary, the terms over
	// which the organization is built (Section 5.2's workflow).
	Searchable []wordnet.TermID
}

// Options configures BuildWorld.
type Options struct {
	Synsets  int
	NumDocs  int
	BktSz    int
	SegSz    int // 0 selects the maximum N/BktSz
	Seed     int64
	MeanLen  int
	UseMini  bool // use the hand-curated mini lexicon instead of wngen
}

// BuildWorld constructs a world: generate (or reuse) a lexicon, sequence
// it, synthesize a corpus, index it, intersect the dictionary, and bucket
// the searchable terms.
func BuildWorld(o Options) *World {
	if o.Synsets == 0 {
		o.Synsets = 1500
	}
	if o.NumDocs == 0 {
		o.NumDocs = 150
	}
	if o.BktSz == 0 {
		o.BktSz = 4
	}
	if o.MeanLen == 0 {
		o.MeanLen = 60
	}
	var db *wordnet.Database
	if o.UseMini {
		db = wordnet.MiniLexicon()
	} else {
		db = wngen.Generate(wngen.ScaledConfig(o.Synsets, o.Seed+1))
	}

	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = o.NumDocs
	ccfg.MeanDocLen = o.MeanLen
	ccfg.Seed = o.Seed + 2
	corp := corpus.Generate(db, ccfg)

	b := index.NewBuilder()
	for _, d := range corp.Docs {
		b.Add(index.DocID(d.ID), d.Tokens)
	}
	ix := b.Build()

	// Intersect: searchable terms are lexicon terms present in the index
	// dictionary, ordered by the Algorithm 1 sequence.
	seq := sequence.Run(db)
	searchable := make([]wordnet.TermID, 0, len(seq))
	for _, t := range seq {
		if _, ok := ix.LookupTerm(db.Lemma(t)); ok {
			searchable = append(searchable, t)
		}
	}
	segSz := o.SegSz
	if segSz == 0 {
		segSz = len(searchable) / o.BktSz
	}
	org, err := bucket.Generate(searchable, db.Specificity, o.BktSz, segSz)
	if err != nil {
		panic("testenv: bucket generation failed: " + err.Error())
	}
	return &World{DB: db, Corp: corp, Index: ix, Org: org, Searchable: searchable}
}

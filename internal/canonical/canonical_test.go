package canonical

import (
	"math/rand"
	"testing"

	"embellish/internal/index"
	"embellish/internal/testenv"
)

var (
	cachedWorld  *testenv.World
	cachedScheme *Scheme
)

func world(t *testing.T) (*testenv.World, *Scheme) {
	t.Helper()
	if cachedWorld == nil {
		cachedWorld = testenv.BuildWorld(testenv.Options{Seed: 131, BktSz: 4})
		cfg := DefaultConfig()
		cfg.Factors = 12
		cfg.Iters = 20
		s, err := Build(cachedWorld.Index, cfg)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		cachedScheme = s
	}
	return cachedWorld, cachedScheme
}

func TestBuildErrors(t *testing.T) {
	b := index.NewBuilder()
	b.Add(0, []string{"alpha", "beta"})
	ix := b.Build()
	bad := DefaultConfig()
	bad.QueryLen = 0
	if _, err := Build(ix, bad); err == nil {
		t.Fatal("QueryLen=0 accepted")
	}
	bad = DefaultConfig()
	bad.GroupSize = 0
	if _, err := Build(ix, bad); err == nil {
		t.Fatal("GroupSize=0 accepted")
	}
}

func TestEveryTermInExactlyOneQuery(t *testing.T) {
	w, s := world(t)
	seen := make(map[int]int)
	for _, q := range s.Queries {
		for _, tm := range q.Terms {
			seen[tm]++
		}
	}
	if len(seen) != w.Index.NumTerms() {
		t.Fatalf("queries cover %d terms, index has %d", len(seen), w.Index.NumTerms())
	}
	for tm, n := range seen {
		if n != 1 {
			t.Fatalf("term %d appears in %d canonical queries", tm, n)
		}
	}
}

func TestQueryLengths(t *testing.T) {
	_, s := world(t)
	for i, q := range s.Queries {
		if len(q.Terms) < 1 || len(q.Terms) > 3 {
			t.Fatalf("query %d has %d terms, want 1..3", i, len(q.Terms))
		}
	}
}

func TestGroupsPartitionQueries(t *testing.T) {
	_, s := world(t)
	seen := make(map[int]bool)
	for gi, g := range s.Groups {
		if len(g) == 0 {
			t.Fatalf("group %d empty", gi)
		}
		for _, q := range g {
			if seen[q] {
				t.Fatalf("query %d in multiple groups", q)
			}
			seen[q] = true
			if s.GroupOf(q) != gi {
				t.Fatalf("GroupOf(%d) = %d, want %d", q, s.GroupOf(q), gi)
			}
		}
	}
	if len(seen) != len(s.Queries) {
		t.Fatalf("groups cover %d queries, have %d", len(seen), len(s.Queries))
	}
}

func TestGroupsPopularityBalanced(t *testing.T) {
	// Groups take consecutive popularity ranks, so within each group the
	// rank span must not exceed the group size (absolute popularity can
	// still spread widely at the Zipfian head — rank adjacency is the
	// construction's actual invariant).
	_, s := world(t)
	rank := make(map[int]int, len(s.Queries))
	order := make([]int, len(s.Queries))
	for i := range order {
		order[i] = i
	}
	// Recompute the popularity ranking the builder used.
	sortStableByPopularity(s, order)
	for r, q := range order {
		rank[q] = r
	}
	for gi, g := range s.Groups {
		lo, hi := rank[g[0]], rank[g[0]]
		for _, q := range g[1:] {
			if rank[q] < lo {
				lo = rank[q]
			}
			if rank[q] > hi {
				hi = rank[q]
			}
		}
		if hi-lo >= len(g)+1 {
			t.Fatalf("group %d spans popularity ranks [%d,%d], want contiguous run of %d",
				gi, lo, hi, len(g))
		}
	}
}

func sortStableByPopularity(s *Scheme, order []int) {
	// Insertion sort keeps the test free of extra imports and is stable.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.Queries[order[j]].Popularity > s.Queries[order[j-1]].Popularity; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

func TestSubstituteReturnsGroupMember(t *testing.T) {
	w, s := world(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		q := []int{rng.Intn(w.Index.NumTerms()), rng.Intn(w.Index.NumTerms())}
		canon, group, err := s.Substitute(q)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, g := range group {
			if g == canon {
				found = true
			}
		}
		if !found {
			t.Fatalf("canonical %d not in its own group %v", canon, group)
		}
	}
}

func TestSubstituteExactCanonicalQuery(t *testing.T) {
	// Substituting a canonical query's own terms must select a query
	// with the same centroid direction (usually itself).
	_, s := world(t)
	q := s.Queries[len(s.Queries)/2]
	canon, _, err := s.Substitute(q.Terms)
	if err != nil {
		t.Fatal(err)
	}
	// The selected query must be at least as similar as the original.
	if canon != len(s.Queries)/2 {
		got := s.Queries[canon]
		simGot := cosine(got.Centroid, q.Centroid)
		if simGot < 0.999 {
			t.Fatalf("self-substitution picked query %d with cosine %.4f", canon, simGot)
		}
	}
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

func sqrt(x float64) float64 {
	// Newton iterations suffice for test-side comparison.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// TestRecallLossPositive demonstrates the paper's criticism: canonical
// substitution loses part of the genuine result set for most queries,
// whereas the PR scheme is lossless by construction (Claim 1).
func TestRecallLossPositive(t *testing.T) {
	w, s := world(t)
	rng := rand.New(rand.NewSource(7))
	var total float64
	trials := 20
	for i := 0; i < trials; i++ {
		q := []int{rng.Intn(w.Index.NumTerms()), rng.Intn(w.Index.NumTerms()), rng.Intn(w.Index.NumTerms())}
		loss, err := s.RecallLoss(w.Index, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if loss < 0 || loss > 1 {
			t.Fatalf("loss %v out of [0,1]", loss)
		}
		total += loss
	}
	if total == 0 {
		t.Fatal("canonical substitution lost nothing over 20 random queries; baseline implausibly perfect")
	}
}

func TestSubstituteEmptyScheme(t *testing.T) {
	s := &Scheme{}
	if _, _, err := s.Substitute([]int{1}); err == nil {
		t.Fatal("empty scheme accepted")
	}
}

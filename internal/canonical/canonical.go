// Package canonical implements the Murugesan-Clifton plausibly deniable
// search baseline ([19], SDM 2009), the scheme Section 2.1 of Pang, Ding
// and Xiao (VLDB 2010) improves upon. Canonical query groups are
// constructed offline by (a) mapping the dictionary terms into a
// low-dimensional LSI factor space, (b) forming canonical queries from
// terms in close proximity in that space via kd-tree nearest-neighbor
// retrieval, and (c) grouping canonical queries of similar popularity
// from different parts of the space. At runtime a user query is replaced
// by the closest canonical query q̃, with the rest of q̃'s group acting as
// cover queries.
//
// The package exists so the paper's criticisms are measurable: the
// substitution changes the result set (precision-recall loss, which the
// PR scheme avoids), and only a tiny subset of term combinations can be
// materialized, so long queries approximate badly.
package canonical

import (
	"errors"
	"math"
	"sort"

	"embellish/internal/index"
	"embellish/internal/kdtree"
	"embellish/internal/lsi"
)

// Config tunes the offline construction.
type Config struct {
	// Factors is the LSI dimensionality; [19] uses 30.
	Factors int
	// QueryLen is the number of terms per canonical query.
	QueryLen int
	// GroupSize is the number of canonical queries per group (the cover
	// set size; one genuine substitute plus GroupSize-1 covers).
	GroupSize int
	// Iters and Seed feed the LSI factorization.
	Iters int
	Seed  int64
}

// DefaultConfig mirrors [19]: 30 factors, 3-term canonical queries,
// groups of 4.
func DefaultConfig() Config {
	return Config{Factors: 30, QueryLen: 3, GroupSize: 4, Iters: 30, Seed: 1}
}

// Query is one canonical query.
type Query struct {
	Terms []int // index term numbers
	// Centroid is the query's position in factor space.
	Centroid []float64
	// Popularity is the summed document frequency of the terms, the
	// grouping key of step (c).
	Popularity int
}

// Scheme is a built canonical-query universe.
type Scheme struct {
	Space   *lsi.Space
	Queries []Query
	// Groups partitions query indices into cover groups.
	Groups [][]int
	// groupOf[q] is the group containing query q.
	groupOf []int
}

// Build constructs the canonical queries and groups from an inverted
// index. Every index term joins exactly one canonical query (so coverage
// is maximal for the given QueryLen); this is the densest materialization
// possible, and still covers only a vanishing fraction of the
// QueryLen-subsets of the dictionary — the limitation Section 2.1 notes.
func Build(ix *index.Index, cfg Config) (*Scheme, error) {
	n := ix.NumTerms()
	if n == 0 {
		return nil, errors.New("canonical: empty index")
	}
	if cfg.QueryLen < 1 || cfg.GroupSize < 1 {
		return nil, errors.New("canonical: QueryLen and GroupSize must be positive")
	}

	// Step (a): term-document matrix with tf-idf-like weights, factored
	// into cfg.Factors dimensions.
	m := lsi.NewMatrix(n, ix.NumDocs)
	for t := 0; t < n; t++ {
		idf := math.Log(1 + float64(ix.NumDocs)/float64(maxInt(1, ix.DocFreq(t))))
		for _, p := range ix.List(t) {
			m.Add(t, int(p.Doc), float64(p.Quantized)*idf)
		}
	}
	space, err := lsi.Factorize(m, lsi.Options{K: cfg.Factors, Iters: cfg.Iters, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	// Step (b): canonical queries from factor-space proximity. Terms are
	// consumed in index order; each unconsumed term seeds a query and
	// pulls its nearest unconsumed neighbors from the kd-tree.
	tree, err := kdtree.New(space.TermVecs, nil)
	if err != nil {
		return nil, err
	}
	used := make([]bool, n)
	s := &Scheme{Space: space}
	for t := 0; t < n; t++ {
		if used[t] {
			continue
		}
		// Over-fetch so that enough unconsumed neighbors remain.
		k := cfg.QueryLen * 4
		if k > n {
			k = n
		}
		nn, _, err := tree.KNN(space.TermVecs[t], k)
		if err != nil {
			return nil, err
		}
		q := Query{}
		for _, cand := range nn {
			if used[cand.ID] {
				continue
			}
			used[cand.ID] = true
			q.Terms = append(q.Terms, cand.ID)
			if len(q.Terms) == cfg.QueryLen {
				break
			}
		}
		// Tail case: not enough neighbors left; sweep linearly.
		for u := 0; len(q.Terms) < cfg.QueryLen && u < n; u++ {
			if !used[u] {
				used[u] = true
				q.Terms = append(q.Terms, u)
			}
		}
		q.Centroid = space.Project(q.Terms)
		for _, tm := range q.Terms {
			q.Popularity += ix.DocFreq(tm)
		}
		s.Queries = append(s.Queries, q)
	}

	// Step (c): group queries of similar popularity from different parts
	// of the factor space. Sort by popularity, then stride-partition so
	// that each group takes queries that are close in popularity rank;
	// consecutive ranks come from unrelated space regions because
	// popularity is uncorrelated with position.
	order := make([]int, len(s.Queries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Queries[order[a]].Popularity > s.Queries[order[b]].Popularity
	})
	s.groupOf = make([]int, len(s.Queries))
	for start := 0; start < len(order); start += cfg.GroupSize {
		end := start + cfg.GroupSize
		if end > len(order) {
			end = len(order)
		}
		g := append([]int(nil), order[start:end]...)
		gi := len(s.Groups)
		s.Groups = append(s.Groups, g)
		for _, q := range g {
			s.groupOf[q] = gi
		}
	}
	return s, nil
}

// Substitute maps a user query (index term numbers) to its closest
// canonical query q̃ and returns q̃'s index along with its whole group:
// the queries actually submitted to the search engine (one substitute
// plus covers).
func (s *Scheme) Substitute(queryTerms []int) (canonical int, group []int, err error) {
	if len(s.Queries) == 0 {
		return 0, nil, errors.New("canonical: no canonical queries")
	}
	qv := s.Space.Project(queryTerms)
	best, bestSim := 0, math.Inf(-1)
	for i, cq := range s.Queries {
		sim := lsi.Cosine(qv, cq.Centroid)
		if sim > bestSim {
			best, bestSim = i, sim
		}
	}
	return best, s.Groups[s.groupOf[best]], nil
}

// GroupOf returns the group index of canonical query q.
func (s *Scheme) GroupOf(q int) int { return s.groupOf[q] }

// RecallLoss measures the precision-recall impact the paper criticizes:
// the fraction of the plaintext top-k result of the genuine query that
// the substituted canonical query fails to retrieve (0 = perfect recall,
// 1 = total loss).
func (s *Scheme) RecallLoss(ix *index.Index, queryTerms []int, k int) (float64, error) {
	canon, _, err := s.Substitute(queryTerms)
	if err != nil {
		return 0, err
	}
	genuine := ix.QuantizedTopK(queryTerms, k)
	if len(genuine) == 0 {
		return 0, nil
	}
	got := ix.QuantizedTopK(s.Queries[canon].Terms, k)
	have := make(map[index.DocID]bool, len(got))
	for _, r := range got {
		have[r.Doc] = true
	}
	missed := 0
	for _, r := range genuine {
		if !have[r.Doc] {
			missed++
		}
	}
	return float64(missed) / float64(len(genuine)), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package index

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func bm25Corpus() *Builder {
	b := NewBuilder()
	b.Scoring = ScoringBM25
	docs := []string{
		"the old night keeper keeps the keep in the town",
		"in the big old house in the big old gown",
		"the house in the town had the big old keep",
		"where the old night keeper never did sleep",
		"the night keeper keeps the keep in the night",
		"and keeps in the dark and sleeps in the light",
	}
	for i, d := range docs {
		b.Add(DocID(i), strings.Fields(d))
	}
	return b
}

func TestBM25ImpactMatchesFormula(t *testing.T) {
	ix := bm25Corpus().Build()
	// Hand-check ('keeper', doc 0). Corpus: 6 docs, avgdl = 57/6.
	// keeper: f_t = 3, f_{0,keeper} = 1, dl_0 = 10.
	p := DefaultBM25()
	n, ft, fdt, dl, avgdl := 6.0, 3.0, 1.0, 10.0, 57.0/6.0
	idf := math.Log(1 + (n-ft+0.5)/(ft+0.5))
	want := idf * fdt * (p.K1 + 1) / (fdt + p.K1*(1-p.B+p.B*dl/avgdl))

	var got float64
	for _, post := range ix.ListByTerm("keeper") {
		if post.Doc == 0 {
			got = post.Impact
		}
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BM25 impact = %.12f, want %.12f", got, want)
	}
}

func TestBM25ImpactsNonNegative(t *testing.T) {
	// The non-negative idf variant keeps every impact >= 0 even for
	// terms in most documents ('the' is in all 6) — required for the
	// integer quantization the PR scheme depends on.
	ix := bm25Corpus().Build()
	for ti := 0; ti < ix.NumTerms(); ti++ {
		for _, p := range ix.List(ti) {
			if p.Impact < 0 || p.Quantized < 1 {
				t.Fatalf("term %q doc %d: impact %v quantized %d",
					ix.Term(ti), p.Doc, p.Impact, p.Quantized)
			}
		}
	}
}

func TestBM25TermFrequencySaturates(t *testing.T) {
	// Higher tf gives higher impact, with diminishing returns.
	b := NewBuilder()
	b.Scoring = ScoringBM25
	b.Add(0, []string{"x", "pad", "pad", "pad"})
	b.Add(1, []string{"x", "x", "pad", "pad"})
	b.Add(2, []string{"x", "x", "x", "pad"})
	ix := b.Build()
	imp := map[DocID]float64{}
	for _, p := range ix.ListByTerm("x") {
		imp[p.Doc] = p.Impact
	}
	if !(imp[0] < imp[1] && imp[1] < imp[2]) {
		t.Fatalf("tf monotonicity broken: %v", imp)
	}
	if (imp[1] - imp[0]) <= (imp[2] - imp[1]) {
		t.Fatalf("tf saturation broken: gains %v then %v", imp[1]-imp[0], imp[2]-imp[1])
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	// Same tf, longer document -> lower impact.
	b := NewBuilder()
	b.Scoring = ScoringBM25
	b.Add(0, []string{"x", "pad"})
	b.Add(1, append([]string{"x"}, strings.Fields(strings.Repeat("pad ", 30))...))
	ix := b.Build()
	imp := map[DocID]float64{}
	for _, p := range ix.ListByTerm("x") {
		imp[p.Doc] = p.Impact
	}
	if imp[0] <= imp[1] {
		t.Fatalf("length normalization broken: short %v long %v", imp[0], imp[1])
	}
}

func TestBM25RarerTermScoresHigher(t *testing.T) {
	b := NewBuilder()
	b.Scoring = ScoringBM25
	b.Add(0, []string{"rare", "common"})
	b.Add(1, []string{"common", "pad"})
	b.Add(2, []string{"common", "pad"})
	b.Add(3, []string{"pad", "pad2"})
	ix := b.Build()
	var rare, common float64
	for _, p := range ix.ListByTerm("rare") {
		if p.Doc == 0 {
			rare = p.Impact
		}
	}
	for _, p := range ix.ListByTerm("common") {
		if p.Doc == 0 {
			common = p.Impact
		}
	}
	if rare <= common {
		t.Fatalf("idf ordering broken: rare %v common %v", rare, common)
	}
}

func TestBM25CustomParams(t *testing.T) {
	// B=0 disables length normalization entirely.
	b := NewBuilder()
	b.Scoring = ScoringBM25
	b.BM25 = BM25Params{K1: 1.2, B: 0}
	b.Add(0, []string{"x", "pad"})
	b.Add(1, append([]string{"x"}, strings.Fields(strings.Repeat("pad ", 30))...))
	ix := b.Build()
	imp := map[DocID]float64{}
	for _, p := range ix.ListByTerm("x") {
		imp[p.Doc] = p.Impact
	}
	if math.Abs(imp[0]-imp[1]) > 1e-12 {
		t.Fatalf("B=0 should ignore length: %v vs %v", imp[0], imp[1])
	}
}

func TestBM25QuantizedTopKConsistent(t *testing.T) {
	// The quantized ranking approximates the exact BM25 ranking the same
	// way it does for cosine — the property the PR scheme relies on.
	b := NewBuilder()
	b.Scoring = ScoringBM25
	rng := rand.New(rand.NewSource(3))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g"}
	for d := 0; d < 50; d++ {
		var toks []string
		for i := 0; i < 20+rng.Intn(20); i++ {
			toks = append(toks, vocab[rng.Intn(len(vocab))])
		}
		b.Add(DocID(d), toks)
	}
	ix := b.Build()
	exact := ix.TopK([]int{0, 2}, 5)
	quant := ix.QuantizedTopK([]int{0, 2}, 5)
	if len(exact) == 0 || len(quant) == 0 {
		t.Fatal("empty rankings")
	}
	// The top document must agree (coarser agreement is quantization-
	// dependent and covered by the cosine tests).
	if exact[0].Doc != quant[0].Doc {
		t.Fatalf("top doc differs: exact %d quantized %d", exact[0].Doc, quant[0].Doc)
	}
}

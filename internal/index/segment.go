package index

import (
	"sort"
	"sync/atomic"
)

// Segment is one immutable mini-index of a Live segment set. Its
// postings carry GLOBAL document ids (offset at append time), and its
// impacts are quantized against the quantization scale pinned when the
// Live set was created, so the homomorphic exponents E(u)^p remain
// comparable across segments.
//
// A Segment optionally caches the document-partitioned Sharded view of
// itself for the worker-pool execution plan. The view is built under
// the Live writer lock and published atomically; readers that find no
// view (or one with a stale shard count) fall back to filtering the
// full lists, which is slower but identical in output.
type Segment struct {
	*Index
	sharded atomic.Pointer[Sharded]
}

// NewSegment wraps an index as a segment.
func NewSegment(ix *Index) *Segment { return &Segment{Index: ix} }

// ShardedView returns the cached document-partitioned view, or nil when
// sharding is not configured (or not yet built for this segment).
func (s *Segment) ShardedView() *Sharded { return s.sharded.Load() }

// ensureSharded builds (or drops, for n <= 0) the cached sharded view.
// Callers hold the owning Live's writer lock; publication is atomic so
// concurrent readers see either the old view or the new one.
func (s *Segment) ensureSharded(n int) {
	if n <= 0 {
		s.sharded.Store(nil)
		return
	}
	if v := s.sharded.Load(); v != nil && v.NumShards() == n {
		return
	}
	s.sharded.Store(s.Index.Shard(n))
}

// mergeSegments rewrites several segments into one, dropping postings
// of tombstoned documents. Impacts and quantized values are copied
// verbatim — a merge never recomputes statistics, so every surviving
// posting scores exactly as it did before and rankings are unchanged.
// Per-list impact order is restored by re-sorting the concatenation.
func mergeSegments(segs []*Segment, dead *Tombstones) *Segment {
	out := &Index{
		terms:       make(map[string]int),
		QuantLevels: segs[0].QuantLevels,
		maxImpact:   segs[0].maxImpact,
	}
	for _, seg := range segs {
		if seg.NumDocs > out.NumDocs {
			out.NumDocs = seg.NumDocs
		}
		for ti, term := range seg.vocab {
			oi, ok := out.terms[term]
			if !ok {
				oi = len(out.vocab)
				out.terms[term] = oi
				out.vocab = append(out.vocab, term)
				out.lists = append(out.lists, nil)
			}
			for _, p := range seg.lists[ti] {
				if !dead.Has(p.Doc) {
					out.lists[oi] = append(out.lists[oi], p)
				}
			}
		}
	}
	for _, list := range out.lists {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Impact != list[j].Impact {
				return list[i].Impact > list[j].Impact
			}
			return list[i].Doc < list[j].Doc
		})
	}
	return NewSegment(out)
}

// Live index: the segmented, online-updatable view of the retrieval
// substrate. The paper's engine (Section 2.2, Appendix B) assumes a
// static impact-ordered index; Live reintroduces updates Lucene-style
// without touching the private-retrieval protocol:
//
//   - the corpus is a set of immutable Segments, each an impact-ordered
//     mini-index quantized against ONE scale pinned at creation time
//     (the quantization-pinning invariant: E(u)^p exponents from
//     different segments stay comparable, so Claim 1 — private ranking
//     equals plaintext ranking — keeps holding across updates);
//   - added documents become a new segment appended to an atomically
//     swapped snapshot — readers load one pointer and never block;
//   - deleted documents become tombstones in an immutable bitset;
//     evaluation skips their postings without any homomorphic work;
//   - a merge policy folds the smallest segments together when the set
//     grows past a bound, rewriting tombstoned postings away. Merges
//     copy impacts verbatim, so a merge never changes any score.
package index

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultMaxSegments is the default bound on the live segment set;
// above it the merge policy folds the smallest segments together.
const DefaultMaxSegments = 8

// Tombstones is an immutable set of deleted document ids, a bitset over
// the global doc-id space. The zero value is the empty set; mutation
// happens by building a new set (withDeleted), never in place, so a
// snapshot holding one is safe for concurrent readers. Tombstones are
// kept even after a merge rewrites the postings away: the bit is what
// records that an id was deleted and must not be deleted twice.
type Tombstones struct {
	words []uint64
	count int
}

// Has reports whether document d is deleted.
func (t *Tombstones) Has(d DocID) bool {
	if t == nil || d < 0 {
		return false
	}
	w := int(d) >> 6
	return w < len(t.words) && t.words[w]&(1<<(uint(d)&63)) != 0
}

// Count returns the number of deleted documents.
func (t *Tombstones) Count() int {
	if t == nil {
		return 0
	}
	return t.count
}

// DocIDs returns the deleted ids in increasing order.
func (t *Tombstones) DocIDs() []DocID {
	if t == nil || t.count == 0 {
		return nil
	}
	out := make([]DocID, 0, t.count)
	for w, word := range t.words {
		for word != 0 {
			out = append(out, DocID(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}

// withDeleted returns a copy of the set with ids added. Every id must
// be a live document: in [0, bound) and not already deleted (a repeat
// within ids counts as already deleted).
func (t *Tombstones) withDeleted(ids []DocID, bound DocID) (*Tombstones, error) {
	nt := &Tombstones{words: make([]uint64, (int(bound)+63)>>6), count: t.Count()}
	if t != nil {
		copy(nt.words, t.words)
	}
	for _, d := range ids {
		if d < 0 || d >= bound {
			return nil, fmt.Errorf("index: document %d out of range [0, %d)", d, bound)
		}
		w, bit := int(d)>>6, uint64(1)<<(uint(d)&63)
		if nt.words[w]&bit != 0 {
			return nil, fmt.Errorf("index: document %d is not live (already deleted)", d)
		}
		nt.words[w] |= bit
		nt.count++
	}
	return nt, nil
}

// Snapshot is one immutable state of a Live set: the segments, the
// tombstones, and the next unassigned document id. Readers obtain a
// Snapshot with Live.Snapshot and evaluate against it without locks; a
// Snapshot stays valid (and internally consistent) forever, even after
// later updates and merges.
type Snapshot struct {
	Segs  []*Segment
	Tombs *Tombstones
	// NextDoc is the next document id an append will assign; ids are
	// dense over everything ever added, deleted ids are never reused.
	NextDoc DocID
	// Version increments on every swap (append, delete, merge).
	Version uint64
}

// LiveDocs returns the number of live (non-deleted) documents.
func (sn *Snapshot) LiveDocs() int { return int(sn.NextDoc) - sn.Tombs.Count() }

// Deleted reports whether document d is tombstoned in this snapshot.
func (sn *Snapshot) Deleted(d DocID) bool { return sn.Tombs.Has(d) }

// LiveDocIDs returns every live (assigned and not tombstoned) document
// id in increasing order — the id set a PIR document store must be
// able to serve for this snapshot. Allocates the full slice; meant for
// audits, tests and store rebuilds, not hot paths.
func (sn *Snapshot) LiveDocIDs() []DocID {
	out := make([]DocID, 0, sn.LiveDocs())
	for d := DocID(0); d < sn.NextDoc; d++ {
		if !sn.Tombs.Has(d) {
			out = append(out, d)
		}
	}
	return out
}

// ValidateDelete reports — without applying anything — whether every
// id could be deleted from this snapshot: assigned, still live, and
// not repeated within ids. Engines that journal deletions to a
// write-ahead log validate against the snapshot they hold under the
// write lock BEFORE appending the journal record, so a record never
// encodes an operation the index would then reject.
func (sn *Snapshot) ValidateDelete(ids []DocID) error {
	_, err := sn.Tombs.withDeleted(ids, sn.NextDoc)
	return err
}

// NumPostings totals the postings across all segments (tombstoned
// postings included until a merge rewrites them away).
func (sn *Snapshot) NumPostings() int {
	n := 0
	for _, seg := range sn.Segs {
		n += seg.NumPostings()
	}
	return n
}

// HasToken reports whether any segment's dictionary contains the token.
func (sn *Snapshot) HasToken(tok string) bool {
	for _, seg := range sn.Segs {
		if _, ok := seg.LookupTerm(tok); ok {
			return true
		}
	}
	return false
}

// QuantizedTopK evaluates a plaintext query over the snapshot's
// quantized impacts — segment by segment, skipping tombstones —
// mirroring exactly what the private retrieval scheme accumulates
// homomorphically. Each token occurrence contributes once, matching
// Index.QuantizedTopK's treatment of repeated query terms.
func (sn *Snapshot) QuantizedTopK(tokens []string, k int) []Result {
	acc := make(map[DocID]float64)
	for _, tok := range tokens {
		for _, seg := range sn.Segs {
			ti, ok := seg.LookupTerm(tok)
			if !ok {
				continue
			}
			for _, p := range seg.List(ti) {
				if !sn.Tombs.Has(p.Doc) {
					acc[p.Doc] += float64(p.Quantized)
				}
			}
		}
	}
	return topKFromAccumulators(acc, k)
}

// Live holds the atomically swapped segment set. Readers call Snapshot
// and are never blocked; writers (Append, Delete, merges) serialize on
// an internal lock and publish a fresh Snapshot with one atomic store.
type Live struct {
	quantLevels int32
	// scale is the pinned quantization scale every segment must share.
	scale float64

	mu          sync.Mutex // serializes writers and merges
	maxSegments int        // merge when the set grows past this; <= 0 disables
	shardN      int        // per-segment sharded views maintained when > 0
	merging     atomic.Bool
	state       atomic.Pointer[Snapshot]
}

// NewLive wraps a freshly built (or legacy single-file) index as a
// one-segment live set, pinning its quantization scale for all future
// segments.
func NewLive(base *Index) *Live {
	lv := &Live{
		quantLevels: base.QuantLevels,
		scale:       base.maxImpact,
		maxSegments: DefaultMaxSegments,
	}
	lv.state.Store(&Snapshot{
		Segs:    []*Segment{NewSegment(base)},
		Tombs:   &Tombstones{},
		NextDoc: DocID(base.NumDocs),
	})
	return lv
}

// NewLiveFromParts reassembles a live set from persisted parts: the
// segment indexes in order, the deleted ids, and the next unassigned
// document id. It validates the quantization-pinning invariant (all
// segments share one scale and resolution) and the id-space bounds.
func NewLiveFromParts(ixs []*Index, deleted []DocID, nextDoc DocID) (*Live, error) {
	if len(ixs) == 0 {
		return nil, errors.New("index: live set needs at least one segment")
	}
	ql, scale := ixs[0].QuantLevels, ixs[0].maxImpact
	segs := make([]*Segment, len(ixs))
	for i, ix := range ixs {
		if ix.QuantLevels != ql {
			return nil, fmt.Errorf("index: segment %d quantizes to %d levels, segment 0 to %d", i, ix.QuantLevels, ql)
		}
		if ix.maxImpact != scale {
			return nil, fmt.Errorf("index: segment %d quantization scale %g differs from pinned scale %g", i, ix.maxImpact, scale)
		}
		if ix.NumDocs > int(nextDoc) {
			return nil, fmt.Errorf("index: segment %d doc bound %d exceeds next doc id %d", i, ix.NumDocs, nextDoc)
		}
		segs[i] = NewSegment(ix)
	}
	tombs, err := (&Tombstones{}).withDeleted(deleted, nextDoc)
	if err != nil {
		return nil, err
	}
	lv := &Live{quantLevels: ql, scale: scale, maxSegments: DefaultMaxSegments}
	lv.state.Store(&Snapshot{Segs: segs, Tombs: tombs, NextDoc: nextDoc})
	return lv, nil
}

// Snapshot returns the current state. The result is immutable and
// remains valid after any number of later updates.
func (lv *Live) Snapshot() *Snapshot { return lv.state.Load() }

// Scale returns the pinned quantization scale. Builders for new
// segments must set Builder.Scale to this value.
func (lv *Live) Scale() float64 { return lv.scale }

// QuantLevels returns the pinned quantization resolution.
func (lv *Live) QuantLevels() int32 { return lv.quantLevels }

// NumSegments reports the current segment count.
func (lv *Live) NumSegments() int { return len(lv.Snapshot().Segs) }

// SetMaxSegments adjusts the merge-policy bound: when an update leaves
// more than n segments, the smallest are folded together in the
// background. n <= 0 disables automatic merging (Compact remains
// available).
func (lv *Live) SetMaxSegments(n int) {
	lv.mu.Lock()
	lv.maxSegments = n
	lv.mu.Unlock()
	lv.maybeMerge()
}

// SetSharding maintains per-segment document-partitioned views for the
// worker-pool plan: n > 0 builds a view per current segment (appends
// and merges keep future segments covered), n <= 0 drops the views.
// Like Server.SetSharding this is a configuration call, not a hot-path
// one; it may copy every segment's postings.
func (lv *Live) SetSharding(n int) {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	lv.shardN = n
	for _, seg := range lv.state.Load().Segs {
		seg.ensureSharded(n)
	}
}

// swapLocked publishes a new snapshot; the caller holds lv.mu.
func (lv *Live) swapLocked(segs []*Segment, tombs *Tombstones, nextDoc DocID) {
	old := lv.state.Load()
	lv.state.Store(&Snapshot{Segs: segs, Tombs: tombs, NextDoc: nextDoc, Version: old.Version + 1})
}

// Append adds a locally built index (dense doc ids from 0, built with
// Builder.Scale = lv.Scale()) as a new segment, assigning its documents
// the next global ids. It returns the first assigned id.
func (lv *Live) Append(local *Index) (DocID, error) {
	lv.mu.Lock()
	if local.QuantLevels != lv.quantLevels {
		lv.mu.Unlock()
		return 0, fmt.Errorf("index: segment quantizes to %d levels, live set to %d", local.QuantLevels, lv.quantLevels)
	}
	if local.maxImpact != lv.scale {
		lv.mu.Unlock()
		return 0, fmt.Errorf("index: segment scale %g is not the pinned quantization scale %g; build it with Builder.Scale", local.maxImpact, lv.scale)
	}
	cur := lv.state.Load()
	base := cur.NextDoc
	local.offsetDocs(base)
	seg := NewSegment(local)
	if lv.shardN > 0 {
		seg.ensureSharded(lv.shardN)
	}
	segs := make([]*Segment, 0, len(cur.Segs)+1)
	segs = append(append(segs, cur.Segs...), seg)
	lv.swapLocked(segs, cur.Tombs, DocID(local.NumDocs))
	lv.mu.Unlock()
	lv.maybeMerge()
	return base, nil
}

// Delete tombstones documents. Every id must be live: already-deleted
// ids (and repeats within one call) are rejected, as are ids never
// assigned. Postings stay on disk in their segments until a merge
// rewrites them away; evaluation skips them meanwhile.
func (lv *Live) Delete(ids []DocID) error {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	cur := lv.state.Load()
	nt, err := cur.Tombs.withDeleted(ids, cur.NextDoc)
	if err != nil {
		return err
	}
	lv.swapLocked(cur.Segs, nt, cur.NextDoc)
	return nil
}

// maybeMerge starts one background merge worker when the segment set
// exceeds the policy bound and none is running. Best effort: a set that
// outgrows the bound while the worker winds down is caught by the next
// update's trigger.
func (lv *Live) maybeMerge() {
	lv.mu.Lock()
	over := lv.maxSegments > 0 && len(lv.state.Load().Segs) > lv.maxSegments
	lv.mu.Unlock()
	if !over || !lv.merging.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer lv.merging.Store(false)
		for lv.MergeNow() {
		}
	}()
}

// MergeNow runs one synchronous merge step: when the set exceeds the
// policy bound, the smallest segments (by posting count) are folded
// into one, dropping tombstoned postings. It reports whether a merge
// happened. Writers are blocked for the duration; readers never are.
func (lv *Live) MergeNow() bool {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	cur := lv.state.Load()
	if lv.maxSegments <= 0 || len(cur.Segs) <= lv.maxSegments {
		return false
	}
	// Fold the k smallest into one so the result lands exactly on the
	// bound.
	k := len(cur.Segs) - lv.maxSegments + 1
	order := make([]int, len(cur.Segs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := cur.Segs[order[a]].NumPostings(), cur.Segs[order[b]].NumPostings()
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	victim := make(map[int]bool, k)
	for _, i := range order[:k] {
		victim[i] = true
	}
	victims := make([]*Segment, 0, k)
	survivors := make([]*Segment, 0, len(cur.Segs)-k+1)
	for i, seg := range cur.Segs {
		if victim[i] {
			victims = append(victims, seg)
		} else {
			survivors = append(survivors, seg)
		}
	}
	merged := mergeSegments(victims, cur.Tombs)
	if lv.shardN > 0 {
		merged.ensureSharded(lv.shardN)
	}
	lv.swapLocked(append(survivors, merged), cur.Tombs, cur.NextDoc)
	return true
}

// Compact folds the whole set into a single segment, rewriting every
// tombstoned posting away, regardless of the policy bound. A no-op when
// the set is already one segment with no deletions.
func (lv *Live) Compact() {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	cur := lv.state.Load()
	if len(cur.Segs) == 1 && cur.Tombs.Count() == 0 {
		return
	}
	merged := mergeSegments(cur.Segs, cur.Tombs)
	if lv.shardN > 0 {
		merged.ensureSharded(lv.shardN)
	}
	lv.swapLocked([]*Segment{merged}, cur.Tombs, cur.NextDoc)
}

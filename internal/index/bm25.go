package index

import "math"

// Scoring selects the similarity function whose per-posting impacts the
// index precomputes. The private retrieval scheme is scoring-agnostic —
// it accumulates whatever integer impacts the lists carry — which is
// the paper's Appendix B point that the solution "applies generally to
// similarity retrieval models that judge similarity from the query and
// document vectors, including Okapi".
type Scoring uint8

const (
	// ScoringCosine is Equation 3 of the paper (the default).
	ScoringCosine Scoring = iota
	// ScoringBM25 is the Okapi BM25 function (Robertson et al. [24]).
	ScoringBM25
)

// BM25Params are the Okapi free parameters.
type BM25Params struct {
	// K1 controls term-frequency saturation; 1.2 is the classic default.
	K1 float64
	// B controls document-length normalization; 0.75 is the classic
	// default.
	B float64
}

// DefaultBM25 returns the standard parameterization.
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75} }

// bm25Impact computes the Okapi per-posting impact
//
//	idf(t) · f_{d,t}·(k1+1) / (f_{d,t} + k1·(1-b+b·dl/avgdl))
//
// with the non-negative idf variant idf = ln(1 + (N-f_t+0.5)/(f_t+0.5)),
// so impacts quantize onto the same non-negative integer scale the
// private retrieval scheme requires.
func bm25Impact(p BM25Params, n, ft, fdt, dl, avgdl float64) float64 {
	idf := math.Log(1 + (n-ft+0.5)/(ft+0.5))
	denom := fdt + p.K1*(1-p.B+p.B*dl/avgdl)
	return idf * fdt * (p.K1 + 1) / denom
}

package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tinyCorpus builds the six-document example corpus used in Appendix B's
// impact-ordered index illustration (Figure 9-style structure).
func tinyCorpus() *Index {
	docs := [][]string{
		{"the", "old", "night", "keeper", "keeps", "the", "keep", "in", "the", "town"},
		{"in", "the", "big", "old", "house", "in", "the", "big", "old", "gown"},
		{"the", "house", "in", "the", "town", "had", "the", "big", "old", "keep"},
		{"where", "the", "old", "night", "keeper", "never", "did", "sleep"},
		{"the", "night", "keeper", "keeps", "the", "keep", "in", "the", "night"},
		{"and", "keeps", "in", "the", "dark", "and", "sleeps", "in", "the", "light"},
	}
	b := NewBuilder()
	for i, d := range docs {
		b.Add(DocID(i), d)
	}
	return b.Build()
}

func TestDictionary(t *testing.T) {
	ix := tinyCorpus()
	if ix.NumDocs != 6 {
		t.Fatalf("NumDocs = %d, want 6", ix.NumDocs)
	}
	// 20 distinct terms in the Appendix B example.
	if ix.NumTerms() != 20 {
		t.Fatalf("NumTerms = %d, want 20", ix.NumTerms())
	}
	ti, ok := ix.LookupTerm("keeper")
	if !ok {
		t.Fatal("missing 'keeper'")
	}
	if ix.DocFreq(ti) != 3 {
		t.Fatalf("f_keeper = %d, want 3", ix.DocFreq(ti))
	}
	ti, _ = ix.LookupTerm("the")
	if ix.DocFreq(ti) != 6 {
		t.Fatalf("f_the = %d, want 6", ix.DocFreq(ti))
	}
}

func TestImpactsMatchEquation3(t *testing.T) {
	ix := tinyCorpus()
	// Recompute w_{d,t}·w_t/W_d by hand for ('keeper', doc 0).
	// doc 0 terms: the(3) old night keeper keeps keep in town.
	n := 6.0
	wt := func(ft float64) float64 { return math.Log(1 + n/ft) }
	wdt := func(f float64) float64 { return 1 + math.Log(f) }
	// Document 0 distinct terms with (f_{d,t}, f_t):
	terms := map[string][2]float64{
		"the": {3, 6}, "old": {1, 4}, "night": {1, 3}, "keeper": {1, 3},
		"keeps": {1, 3}, "keep": {1, 3}, "in": {1, 5}, "town": {1, 2},
	}
	var w2 float64
	for _, v := range terms {
		// Equation 3's normalizer uses the document weights w_{d,t} alone.
		x := wdt(v[0])
		w2 += x * x
	}
	wd := math.Sqrt(w2)
	want := wdt(1) * wt(3) / wd

	list := ix.ListByTerm("keeper")
	var got float64
	for _, p := range list {
		if p.Doc == 0 {
			got = p.Impact
		}
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("impact = %.12f, want %.12f", got, want)
	}
}

func TestImpactOrdering(t *testing.T) {
	ix := tinyCorpus()
	for ti := 0; ti < ix.NumTerms(); ti++ {
		list := ix.List(ti)
		for i := 1; i < len(list); i++ {
			if list[i].Impact > list[i-1].Impact {
				t.Fatalf("list %q not impact-ordered", ix.Term(ti))
			}
		}
	}
}

func TestQuantizationRange(t *testing.T) {
	ix := tinyCorpus()
	for ti := 0; ti < ix.NumTerms(); ti++ {
		for _, p := range ix.List(ti) {
			if p.Quantized < 1 || p.Quantized > ix.QuantLevels {
				t.Fatalf("quantized impact %d outside [1, %d]", p.Quantized, ix.QuantLevels)
			}
		}
	}
}

func TestQuantizationMonotone(t *testing.T) {
	ix := tinyCorpus()
	for ti := 0; ti < ix.NumTerms(); ti++ {
		list := ix.List(ti)
		for i := 1; i < len(list); i++ {
			if list[i].Quantized > list[i-1].Quantized {
				t.Fatalf("quantization not monotone with impact in %q", ix.Term(ti))
			}
		}
	}
}

func TestTopKRanksByScore(t *testing.T) {
	ix := tinyCorpus()
	kt, _ := ix.LookupTerm("keeper")
	nt, _ := ix.LookupTerm("night")
	res := ix.TopK([]int{kt, nt}, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted by decreasing score")
		}
	}
	// Doc 4 contains 'night' twice and 'keeper' once in a short document;
	// it must outrank docs containing only one query term.
	if res[0].Doc != 4 {
		t.Fatalf("top doc = %d, want 4", res[0].Doc)
	}
}

func TestTopKMatchesNaiveEvaluation(t *testing.T) {
	// Figure 10's accumulator algorithm must equal brute-force Σ impacts.
	ix := tinyCorpus()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		q := []int{rng.Intn(ix.NumTerms()), rng.Intn(ix.NumTerms()), rng.Intn(ix.NumTerms())}
		got := ix.TopK(q, 0)
		want := make(map[DocID]float64)
		for _, ti := range q {
			for _, p := range ix.List(ti) {
				want[p.Doc] += p.Impact
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for _, r := range got {
			if math.Abs(want[r.Doc]-r.Score) > 1e-9 {
				t.Fatalf("trial %d: doc %d score %v, want %v", trial, r.Doc, r.Score, want[r.Doc])
			}
		}
	}
}

func TestTopKDuplicateQueryTerms(t *testing.T) {
	// A term listed twice contributes twice (matching Σ over query terms).
	ix := tinyCorpus()
	kt, _ := ix.LookupTerm("keeper")
	single := ix.TopK([]int{kt}, 0)
	double := ix.TopK([]int{kt, kt}, 0)
	for i := range single {
		if math.Abs(double[i].Score-2*single[i].Score) > 1e-9 {
			t.Fatal("duplicate term did not double the score")
		}
	}
}

func TestTopKUnknownTerm(t *testing.T) {
	ix := tinyCorpus()
	if res := ix.TopK([]int{-1, 9999}, 5); len(res) != 0 {
		t.Fatalf("unknown terms produced %d results", len(res))
	}
}

func TestQuantizedTopKApproximatesExact(t *testing.T) {
	// At 255 levels the quantized ranking's top document should agree
	// with the exact ranking for multi-term queries on this corpus.
	ix := tinyCorpus()
	kt, _ := ix.LookupTerm("keeper")
	nt, _ := ix.LookupTerm("night")
	st, _ := ix.LookupTerm("sleep")
	exact := ix.TopK([]int{kt, nt, st}, 1)
	quant := ix.QuantizedTopK([]int{kt, nt, st}, 1)
	if exact[0].Doc != quant[0].Doc {
		t.Fatalf("top docs differ: exact %d, quantized %d", exact[0].Doc, quant[0].Doc)
	}
}

func TestListBytes(t *testing.T) {
	ix := tinyCorpus()
	ti, _ := ix.LookupTerm("keeper")
	if got := ix.ListBytes(ti); got != 8*3 {
		t.Fatalf("ListBytes = %d, want 24", got)
	}
}

func TestAddOutOfOrderPanics(t *testing.T) {
	b := NewBuilder()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	b.Add(1, []string{"x"})
}

// Property: every posting's impact is positive and finite, and f_t equals
// the list length, for random corpora.
func TestBuildInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		b := NewBuilder()
		nDocs := 3 + rng.Intn(20)
		for d := 0; d < nDocs; d++ {
			n := 1 + rng.Intn(30)
			toks := make([]string, n)
			for i := range toks {
				toks[i] = vocab[rng.Intn(len(vocab))]
			}
			b.Add(DocID(d), toks)
		}
		ix := b.Build()
		for ti := 0; ti < ix.NumTerms(); ti++ {
			for _, p := range ix.List(ti) {
				if !(p.Impact > 0) || math.IsInf(p.Impact, 0) || math.IsNaN(p.Impact) {
					return false
				}
				if p.Doc < 0 || int(p.Doc) >= ix.NumDocs {
					return false
				}
			}
			if ix.DocFreq(ti) != len(ix.List(ti)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

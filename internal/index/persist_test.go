package index

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder()
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "multi word term"}
	for d := 0; d < 40; d++ {
		var tokens []string
		n := 10 + rng.Intn(30)
		for i := 0; i < n; i++ {
			tokens = append(tokens, vocab[rng.Intn(len(vocab))])
		}
		b.Add(DocID(d), tokens)
	}
	return b.Build()
}

func TestPersistRoundTrip(t *testing.T) {
	ix := buildSample(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs != ix.NumDocs || got.QuantLevels != ix.QuantLevels || got.maxImpact != ix.maxImpact {
		t.Fatalf("header mismatch: %+v vs %+v", got, ix)
	}
	if got.NumTerms() != ix.NumTerms() {
		t.Fatalf("vocab size %d vs %d", got.NumTerms(), ix.NumTerms())
	}
	for i := 0; i < ix.NumTerms(); i++ {
		if got.Term(i) != ix.Term(i) {
			t.Fatalf("term %d: %q vs %q", i, got.Term(i), ix.Term(i))
		}
		a, b := got.List(i), ix.List(i)
		if len(a) != len(b) {
			t.Fatalf("list %d length %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("list %d posting %d: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
	// Behaviour check: identical top-k on a query.
	qt := []int{0, 2, 4}
	ra := got.TopK(qt, 10)
	rb := ix.TopK(qt, 10)
	for i := range rb {
		if ra[i] != rb[i] {
			t.Fatalf("TopK diverges at %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestPersistDetectsCorruption(t *testing.T) {
	ix := buildSample(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload byte near the middle.
	data[len(data)/2] ^= 0xff
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestPersistRejectsBadMagic(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestPersistRejectsTruncation(t *testing.T) {
	ix := buildSample(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 5, 20, len(data) / 2, len(data) - 2} {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestPersistRejectsBadVersion(t *testing.T) {
	ix := buildSample(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestPersistEmptyListsSurvive(t *testing.T) {
	// A term can exist in the vocabulary with an empty list after
	// pruning; persistence must round-trip it.
	b := NewBuilder()
	b.Add(0, []string{"only"})
	ix := b.Build()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTerms() != 1 || len(got.List(0)) != 1 {
		t.Fatalf("tiny index mangled: %d terms", got.NumTerms())
	}
}

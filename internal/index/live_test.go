package index

import (
	"fmt"
	"testing"
	"time"
)

// buildBase indexes a small fixed corpus and wraps it as a live set.
func buildBase(t *testing.T) (*Live, *Index) {
	t.Helper()
	b := NewBuilder()
	docs := [][]string{
		{"apple", "banana", "apple"},
		{"banana", "cherry"},
		{"cherry", "cherry", "durian"},
		{"apple", "durian", "banana", "cherry"},
	}
	for i, toks := range docs {
		b.Add(DocID(i), toks)
	}
	ix := b.Build()
	return NewLive(ix), ix
}

// pinnedSegment builds a local mini-index over tokens with the live
// set's pinned scale.
func pinnedSegment(lv *Live, docs [][]string) *Index {
	b := NewBuilder()
	b.Scale = lv.Scale()
	for i, toks := range docs {
		b.Add(DocID(i), toks)
	}
	return b.Build()
}

func resultDocs(rs []Result) []DocID {
	out := make([]DocID, len(rs))
	for i, r := range rs {
		out[i] = r.Doc
	}
	return out
}

func TestLiveAppendAssignsGlobalIDs(t *testing.T) {
	lv, _ := buildBase(t)
	base, err := lv.Append(pinnedSegment(lv, [][]string{{"apple", "elder"}, {"elder", "elder"}}))
	if err != nil {
		t.Fatal(err)
	}
	if base != 4 {
		t.Fatalf("first appended doc id = %d, want 4", base)
	}
	sn := lv.Snapshot()
	if sn.NextDoc != 6 || len(sn.Segs) != 2 || sn.LiveDocs() != 6 {
		t.Fatalf("snapshot shape: NextDoc=%d segs=%d live=%d", sn.NextDoc, len(sn.Segs), sn.LiveDocs())
	}
	// The new term is retrievable with a global doc id.
	res := sn.QuantizedTopK([]string{"elder"}, 0)
	if len(res) != 2 || res[0].Doc != 5 || res[1].Doc != 4 {
		t.Fatalf("elder results = %+v, want docs 5 then 4", res)
	}
	// An old term now spans both segments.
	res = sn.QuantizedTopK([]string{"apple"}, 0)
	seen := map[DocID]bool{}
	for _, r := range res {
		seen[r.Doc] = true
	}
	for _, d := range []DocID{0, 3, 4} {
		if !seen[d] {
			t.Fatalf("apple results %v missing doc %d", resultDocs(res), d)
		}
	}
}

func TestLiveAppendRejectsUnpinnedScale(t *testing.T) {
	lv, _ := buildBase(t)
	b := NewBuilder() // no Scale: derives its own
	b.Add(0, []string{"zebra", "zebra", "yak"})
	if _, err := lv.Append(b.Build()); err == nil {
		t.Fatal("segment with its own scale accepted")
	}
	b2 := NewBuilder()
	b2.Scale = lv.Scale()
	b2.QuantLevels = 31
	b2.Add(0, []string{"zebra"})
	if _, err := lv.Append(b2.Build()); err == nil {
		t.Fatal("segment with mismatched QuantLevels accepted")
	}
}

func TestLiveDeleteTombstones(t *testing.T) {
	lv, _ := buildBase(t)
	if err := lv.Delete([]DocID{1}); err != nil {
		t.Fatal(err)
	}
	sn := lv.Snapshot()
	if sn.LiveDocs() != 3 || !sn.Deleted(1) {
		t.Fatalf("after delete: live=%d deleted(1)=%v", sn.LiveDocs(), sn.Deleted(1))
	}
	for _, r := range sn.QuantizedTopK([]string{"banana", "cherry"}, 0) {
		if r.Doc == 1 {
			t.Fatal("tombstoned doc 1 still scored")
		}
	}
	// Not-live ids are rejected: never assigned, already deleted, and
	// repeats within one call.
	if err := lv.Delete([]DocID{99}); err == nil {
		t.Fatal("unassigned id accepted")
	}
	if err := lv.Delete([]DocID{1}); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := lv.Delete([]DocID{2, 2}); err == nil {
		t.Fatal("repeated id within one call accepted")
	}
	// A failed call must not leave partial tombstones behind.
	if lv.Snapshot().Deleted(2) {
		t.Fatal("failed delete leaked a tombstone")
	}
}

func TestLiveMergePreservesScores(t *testing.T) {
	lv, _ := buildBase(t)
	for i := 0; i < 3; i++ {
		docs := [][]string{{"apple", "fig"}, {"fig", fmt.Sprintf("term%d", i)}}
		if _, err := lv.Append(pinnedSegment(lv, docs)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lv.Delete([]DocID{0, 5}); err != nil {
		t.Fatal(err)
	}
	query := []string{"apple", "banana", "fig"}
	preSnap := lv.Snapshot()
	before := preSnap.QuantizedTopK(query, 0)

	lv.Compact()
	sn := lv.Snapshot()
	if len(sn.Segs) != 1 {
		t.Fatalf("Compact left %d segments", len(sn.Segs))
	}
	after := sn.QuantizedTopK(query, 0)
	if len(before) != len(after) {
		t.Fatalf("result count changed across compact: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rank %d changed across compact: %+v vs %+v", i, before[i], after[i])
		}
	}
	// Tombstoned postings were rewritten away but the ids stay dead.
	if sn.NumPostings() >= preSnap.NumPostings() {
		t.Fatalf("compact did not shrink postings: %d vs %d", sn.NumPostings(), preSnap.NumPostings())
	}
	if !sn.Deleted(0) || sn.LiveDocs() != 8 {
		t.Fatalf("tombstone bookkeeping lost: deleted(0)=%v live=%d", sn.Deleted(0), sn.LiveDocs())
	}
	if err := lv.Delete([]DocID{0}); err == nil {
		t.Fatal("compacted-away id deletable again")
	}
}

func TestLiveMergePolicyBoundsSegments(t *testing.T) {
	lv, _ := buildBase(t)
	lv.SetMaxSegments(2)
	for i := 0; i < 5; i++ {
		if _, err := lv.Append(pinnedSegment(lv, [][]string{{"grape", "apple"}})); err != nil {
			t.Fatal(err)
		}
	}
	// The policy merges in the background; wait for it to settle.
	deadline := time.Now().Add(5 * time.Second)
	for lv.NumSegments() > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("merge policy left %d segments", lv.NumSegments())
		}
		time.Sleep(time.Millisecond)
	}
	sn := lv.Snapshot()
	res := sn.QuantizedTopK([]string{"grape"}, 0)
	if len(res) != 5 {
		t.Fatalf("grape docs after merges = %d, want 5", len(res))
	}
	if sn.LiveDocs() != 9 {
		t.Fatalf("live docs = %d, want 9", sn.LiveDocs())
	}
}

func TestLiveVersionsAndSnapshotStability(t *testing.T) {
	lv, _ := buildBase(t)
	s0 := lv.Snapshot()
	if _, err := lv.Append(pinnedSegment(lv, [][]string{{"apple"}})); err != nil {
		t.Fatal(err)
	}
	s1 := lv.Snapshot()
	if err := lv.Delete([]DocID{4}); err != nil {
		t.Fatal(err)
	}
	s2 := lv.Snapshot()
	if !(s0.Version < s1.Version && s1.Version < s2.Version) {
		t.Fatalf("versions not monotonic: %d %d %d", s0.Version, s1.Version, s2.Version)
	}
	// Old snapshots are unaffected by later updates.
	if s0.LiveDocs() != 4 || s1.LiveDocs() != 5 || s2.LiveDocs() != 4 {
		t.Fatalf("live counts: %d %d %d", s0.LiveDocs(), s1.LiveDocs(), s2.LiveDocs())
	}
	if s1.Deleted(4) {
		t.Fatal("snapshot s1 sees a later tombstone")
	}
}

func TestLiveFromPartsValidation(t *testing.T) {
	lv, base := buildBase(t)
	seg := pinnedSegment(lv, [][]string{{"apple"}})
	seg.offsetDocs(4)
	if _, err := NewLiveFromParts([]*Index{base, seg}, []DocID{1}, 5); err != nil {
		t.Fatalf("valid parts rejected: %v", err)
	}
	if _, err := NewLiveFromParts(nil, nil, 0); err == nil {
		t.Fatal("empty segment list accepted")
	}
	if _, err := NewLiveFromParts([]*Index{base, seg}, nil, 4); err == nil {
		t.Fatal("doc bound past NextDoc accepted")
	}
	if _, err := NewLiveFromParts([]*Index{base, seg}, []DocID{7}, 5); err == nil {
		t.Fatal("tombstone past NextDoc accepted")
	}
	b := NewBuilder()
	b.Add(0, []string{"solo"})
	alien := b.Build() // own scale, almost surely != pinned
	if _, err := NewLiveFromParts([]*Index{base, alien}, nil, 5); err == nil {
		t.Fatal("scale mismatch accepted")
	}
}

func TestTombstoneDocIDsRoundTrip(t *testing.T) {
	lv, _ := buildBase(t)
	if _, err := lv.Append(pinnedSegment(lv, [][]string{{"a"}, {"b"}, {"c"}})); err != nil {
		t.Fatal(err)
	}
	want := []DocID{0, 2, 5, 6}
	if err := lv.Delete(want); err != nil {
		t.Fatal(err)
	}
	got := lv.Snapshot().Tombs.DocIDs()
	if len(got) != len(want) {
		t.Fatalf("DocIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DocIDs = %v, want %v", got, want)
		}
	}
}

package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"embellish/internal/vbyte"
)

// On-disk format (little-endian where fixed-width):
//
//	magic "EIDX" | version u8 | NumDocs vbyte | QuantLevels vbyte |
//	maxImpact f64 | docLen vbyte-slice | vocab count + (len,bytes)* |
//	per term: posting count, then per posting doc vbyte, quantized
//	vbyte, impact f64 | crc32(payload)
//
// Inverted lists are written in their in-memory impact order, so a
// loaded index is byte-for-byte behaviourally identical to the built
// one. Impacts stay full-precision float64: quantized values alone
// would perturb plaintext scoring.

const (
	persistMagic   = "EIDX"
	persistVersion = 1
	// maxReasonable bounds attacker-controlled counts during load.
	maxReasonable = 1 << 31
)

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(cw, crc)

	var buf []byte
	if _, err := io.WriteString(out, persistMagic); err != nil {
		return cw.n, err
	}
	if _, err := out.Write([]byte{persistVersion}); err != nil {
		return cw.n, err
	}
	buf = vbyte.Append(buf[:0], uint64(ix.NumDocs))
	buf = vbyte.Append(buf, uint64(ix.QuantLevels))
	var f8 [8]byte
	binary.LittleEndian.PutUint64(f8[:], math.Float64bits(ix.maxImpact))
	buf = append(buf, f8[:]...)
	// Document lengths.
	buf = vbyte.Append(buf, uint64(len(ix.docLen)))
	for _, l := range ix.docLen {
		buf = vbyte.Append(buf, uint64(l))
	}
	// Vocabulary.
	buf = vbyte.Append(buf, uint64(len(ix.vocab)))
	for _, s := range ix.vocab {
		buf = vbyte.Append(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	if _, err := out.Write(buf); err != nil {
		return cw.n, err
	}
	// Inverted lists.
	for _, list := range ix.lists {
		buf = vbyte.Append(buf[:0], uint64(len(list)))
		for _, p := range list {
			buf = vbyte.Append(buf, uint64(p.Doc))
			buf = vbyte.Append(buf, uint64(p.Quantized))
			binary.LittleEndian.PutUint64(f8[:], math.Float64bits(p.Impact))
			buf = append(buf, f8[:]...)
		}
		if _, err := out.Write(buf); err != nil {
			return cw.n, err
		}
	}
	// Trailing checksum (not itself checksummed).
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := cw.Write(tail[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadIndex deserializes an index written by WriteTo, verifying the
// checksum and validating every count before allocation. The whole file
// is read up front: the checksum trails the payload, and verifying it
// before parsing keeps corrupt input from half-populating an index.
func ReadIndex(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: reading file: %w", err)
	}
	if len(data) < len(persistMagic)+1+4 {
		return nil, errors.New("index: file too short")
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("index: checksum mismatch; file corrupt")
	}
	br := bufio.NewReader(bytes.NewReader(payload))

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic[:]) != persistMagic {
		return nil, errors.New("index: bad magic; not an index file")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != persistVersion {
		return nil, fmt.Errorf("index: unsupported version %d", ver)
	}

	numDocs, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: NumDocs: %w", err)
	}
	quant, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("index: QuantLevels: %w", err)
	}
	if numDocs > maxReasonable || quant > maxReasonable || quant == 0 {
		return nil, errors.New("index: implausible header counts")
	}
	maxImpact, err := readFloat64(br)
	if err != nil {
		return nil, err
	}

	ix := &Index{
		NumDocs:     int(numDocs),
		QuantLevels: int32(quant),
		maxImpact:   maxImpact,
		terms:       map[string]int{},
	}

	nLens, err := readUvarint(br)
	if err != nil || nLens > maxReasonable {
		return nil, fmt.Errorf("index: docLen count: %w", orImplausible(err))
	}
	ix.docLen = make([]int32, nLens)
	for i := range ix.docLen {
		v, err := readUvarint(br)
		if err != nil || v > maxReasonable {
			return nil, fmt.Errorf("index: docLen[%d]: %w", i, orImplausible(err))
		}
		ix.docLen[i] = int32(v)
	}

	nVocab, err := readUvarint(br)
	if err != nil || nVocab > maxReasonable {
		return nil, fmt.Errorf("index: vocab count: %w", orImplausible(err))
	}
	ix.vocab = make([]string, nVocab)
	for i := range ix.vocab {
		slen, err := readUvarint(br)
		if err != nil || slen > 1<<20 {
			return nil, fmt.Errorf("index: vocab[%d] length: %w", i, orImplausible(err))
		}
		b := make([]byte, slen)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("index: vocab[%d]: %w", i, err)
		}
		ix.vocab[i] = string(b)
		if _, dup := ix.terms[ix.vocab[i]]; dup {
			return nil, fmt.Errorf("index: duplicate vocab entry %q", ix.vocab[i])
		}
		ix.terms[ix.vocab[i]] = i
	}

	ix.lists = make([][]Posting, nVocab)
	for t := range ix.lists {
		n, err := readUvarint(br)
		if err != nil || n > numDocs {
			return nil, fmt.Errorf("index: list %d count: %w", t, orImplausible(err))
		}
		list := make([]Posting, n)
		for i := range list {
			doc, err := readUvarint(br)
			if err != nil || doc >= numDocs {
				return nil, fmt.Errorf("index: list %d posting %d doc: %w", t, i, orImplausible(err))
			}
			q, err := readUvarint(br)
			if err != nil || q > quant {
				return nil, fmt.Errorf("index: list %d posting %d quantized: %w", t, i, orImplausible(err))
			}
			imp, err := readFloat64(br)
			if err != nil {
				return nil, err
			}
			list[i] = Posting{Doc: DocID(doc), Quantized: int32(q), Impact: imp}
		}
		// The impact ordering is an index invariant; reject files that
		// violate it rather than silently mis-ranking.
		for i := 1; i < len(list); i++ {
			if list[i].Impact > list[i-1].Impact {
				return nil, fmt.Errorf("index: list %d not impact-ordered at %d", t, i)
			}
		}
		ix.lists[t] = list
	}

	return ix, nil
}

func orImplausible(err error) error {
	if err != nil {
		return err
	}
	return errors.New("implausible count")
}

func readUvarint(br io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if i == vbyte.MaxLen {
			return 0, errors.New("overlong varint")
		}
		if b&0x80 != 0 {
			return v | uint64(b&0x7f)<<shift, nil
		}
		v |= uint64(b) << shift
		shift += 7
		if shift >= 64 {
			return 0, errors.New("varint overflow")
		}
	}
}

func readFloat64(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

package index

// Sharded is a document-partitioned view of an Index: every inverted
// list is split into n sub-lists by DocID, so shard s holds exactly the
// postings of documents d with d mod n == s. Because the partition is by
// document — not by term — the per-shard score accumulators of a query
// are disjoint: a worker that folds shard s's postings can never touch a
// document owned by another shard, so merging shard results is pure
// concatenation, with no cross-shard homomorphic additions and no locks.
//
// Within each sub-list the original decreasing-impact order is
// preserved, so shard-local top-k traversals remain valid.
//
// The view materializes its own copy of every posting (the original
// lists stay live in the wrapped Index), so configuring sharding
// roughly doubles the memory held by the postings store — the price of
// contiguous per-shard scans.
//
// A Sharded view is immutable after construction and safe for concurrent
// readers, like the Index it wraps.
type Sharded struct {
	ix *Index
	n  int
	// lists[t][s] is the shard-s slice of term t's inverted list.
	lists [][][]Posting
}

// NumShards returns the shard count n.
func (sh *Sharded) NumShards() int { return sh.n }

// Index returns the underlying unsharded index.
func (sh *Sharded) Index() *Index { return sh.ix }

// ShardOf returns the shard owning document d.
func (sh *Sharded) ShardOf(d DocID) int { return int(d) % sh.n }

// List returns the shard-s sub-list of term t, impact-ordered. The
// returned slice is owned by the view.
func (sh *Sharded) List(t, s int) []Posting { return sh.lists[t][s] }

// Shard partitions the index into n document shards. n < 1 is treated
// as 1 (a single shard containing every posting).
func (ix *Index) Shard(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	sh := &Sharded{ix: ix, n: n, lists: make([][][]Posting, len(ix.lists))}
	counts := make([]int, n)
	for t, list := range ix.lists {
		for i := range counts {
			counts[i] = 0
		}
		for i := range list {
			counts[int(list[i].Doc)%n]++
		}
		parts := make([][]Posting, n)
		// One backing array per term, carved into n sub-slices: the
		// postings are copied once (see the type comment on memory
		// cost), and each shard's slice stays contiguous.
		backing := make([]Posting, len(list))
		off := 0
		for s := 0; s < n; s++ {
			parts[s] = backing[off : off : off+counts[s]]
			off += counts[s]
		}
		for i := range list {
			s := int(list[i].Doc) % n
			parts[s] = append(parts[s], list[i])
		}
		sh.lists[t] = parts
	}
	return sh
}

package index

import (
	"fmt"
	"math/rand"
	"testing"
)

func buildShardTestIndex(t *testing.T, docs, vocab int) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	for d := 0; d < docs; d++ {
		n := 5 + rng.Intn(20)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = fmt.Sprintf("w%d", rng.Intn(vocab))
		}
		b.Add(DocID(d), toks)
	}
	return b.Build()
}

// TestShardPartition verifies every posting lands in exactly one shard,
// in the shard its document maps to, with impact order preserved.
func TestShardPartition(t *testing.T) {
	ix := buildShardTestIndex(t, 200, 40)
	for _, n := range []int{1, 2, 3, 8, 17} {
		sh := ix.Shard(n)
		if sh.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", sh.NumShards(), n)
		}
		for ti := 0; ti < ix.NumTerms(); ti++ {
			full := ix.List(ti)
			total := 0
			seen := make(map[DocID]bool, len(full))
			for s := 0; s < n; s++ {
				part := sh.List(ti, s)
				total += len(part)
				for i, p := range part {
					if int(p.Doc)%n != s {
						t.Fatalf("n=%d term %d: doc %d in shard %d", n, ti, p.Doc, s)
					}
					if seen[p.Doc] {
						t.Fatalf("n=%d term %d: doc %d appears twice", n, ti, p.Doc)
					}
					seen[p.Doc] = true
					if i > 0 && part[i-1].Impact < p.Impact {
						t.Fatalf("n=%d term %d shard %d: impact order broken at %d", n, ti, s, i)
					}
				}
			}
			if total != len(full) {
				t.Fatalf("n=%d term %d: shards hold %d postings, index has %d", n, ti, total, len(full))
			}
			for _, p := range full {
				if !seen[p.Doc] {
					t.Fatalf("n=%d term %d: doc %d lost", n, ti, p.Doc)
				}
			}
		}
	}
}

// TestShardDegenerate covers n<1 clamping and shard counts exceeding the
// document count.
func TestShardDegenerate(t *testing.T) {
	ix := buildShardTestIndex(t, 10, 8)
	sh := ix.Shard(0)
	if sh.NumShards() != 1 {
		t.Fatalf("Shard(0) produced %d shards, want 1", sh.NumShards())
	}
	for ti := 0; ti < ix.NumTerms(); ti++ {
		if got, want := len(sh.List(ti, 0)), len(ix.List(ti)); got != want {
			t.Fatalf("term %d: single shard holds %d postings, want %d", ti, got, want)
		}
	}
	wide := ix.Shard(64)
	for ti := 0; ti < ix.NumTerms(); ti++ {
		total := 0
		for s := 0; s < 64; s++ {
			total += len(wide.List(ti, s))
		}
		if total != len(ix.List(ti)) {
			t.Fatalf("term %d: 64-way shards hold %d postings, want %d", ti, total, len(ix.List(ti)))
		}
	}
}

// Package index implements the similarity-retrieval substrate of the
// paper (Section 2.2 and Appendix B): an impact-ordered inverted index
// over a document corpus, with the cosine scoring function of Equation 3,
//
//	S_{d,q} = Σ_{t∈q} w_{d,t}·w_t / W_d,
//	w_t = ln(1 + N/f_t),  w_{d,t} = 1 + ln f_{d,t},  W_d = sqrt(Σ w_{d,t}²),
//
// precomputed per posting as the impact p_{d,t} = w_{d,t}·w_t/W_d
// (Equation 4). Inverted lists are sorted by decreasing impact, and the
// top-k evaluation algorithm of Figure 10 accumulates scores by repeatedly
// popping the globally highest remaining impact.
//
// Impacts are additionally quantized to small non-negative integers
// (footnote 1 of the paper, following Zobel & Moffat), which the private
// retrieval scheme requires so that the homomorphic operation E(u)^p is
// defined over integer exponents.
package index

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// DocID identifies a document in the corpus, dense from 0.
type DocID int32

// Posting is one entry of an inverted list: a document and the impact of
// the term in it. Quantized is the integer impact used by the private
// retrieval scheme; Impact is the exact float value used by plaintext
// scoring.
type Posting struct {
	Doc       DocID
	Impact    float64
	Quantized int32
}

// Index is an impact-ordered inverted index. Build it with a Builder;
// afterwards it is immutable and safe for concurrent readers. In a
// segmented Live set an Index is one segment (see live.go); segment
// postings carry global document ids.
type Index struct {
	// NumDocs is the exclusive bound of the document-id space: every
	// posting satisfies Doc < NumDocs. For a freshly built index the ids
	// are dense from 0, so this equals the number of documents indexed;
	// for a segment of a Live set it is the global bound, not the
	// segment's own document count.
	NumDocs int
	// terms maps the dictionary string to a dense term number.
	terms map[string]int
	// vocab is the inverse mapping.
	vocab []string
	// lists[i] is the inverted list of term i, sorted by decreasing
	// impact.
	lists [][]Posting
	// docLen[d] is the number of distinct terms in document d.
	docLen []int32
	// QuantLevels records the quantization resolution used at build time.
	QuantLevels int32
	// maxImpact is the largest raw impact seen, the quantization scale.
	maxImpact float64
}

// Scale returns the quantization scale the index's impacts were
// quantized against (Builder.Scale, or the batch maximum when unset).
// Live.Append requires it to match the live set's pinned scale;
// callers can pre-check with this accessor before mutating adjacent
// state.
func (ix *Index) Scale() float64 { return ix.maxImpact }

// NumTerms returns the dictionary size.
func (ix *Index) NumTerms() int { return len(ix.vocab) }

// Term returns the dictionary string of term number i.
func (ix *Index) Term(i int) string { return ix.vocab[i] }

// LookupTerm resolves a dictionary string to its term number.
func (ix *Index) LookupTerm(s string) (int, bool) {
	i, ok := ix.terms[s]
	return i, ok
}

// List returns the inverted list of term i (impact-ordered). The returned
// slice is owned by the index.
func (ix *Index) List(i int) []Posting { return ix.lists[i] }

// ListByTerm returns the inverted list for a dictionary string, or nil.
func (ix *Index) ListByTerm(s string) []Posting {
	if i, ok := ix.terms[s]; ok {
		return ix.lists[i]
	}
	return nil
}

// DocFreq returns f_t, the number of documents containing term i.
func (ix *Index) DocFreq(i int) int { return len(ix.lists[i]) }

// Vocabulary returns all dictionary strings in term-number order. The
// returned slice is owned by the index.
func (ix *Index) Vocabulary() []string { return ix.vocab }

// ListBytes returns the on-disk size of term i's inverted list under the
// paper's layout: one ⟨document id, impact⟩ pair per posting (4+4 bytes).
func (ix *Index) ListBytes(i int) int { return 8 * len(ix.lists[i]) }

// MaxImpact returns the quantization scale: the raw impact that maps to
// QuantLevels. A pinned-scale build (Builder.Scale) reports the pinned
// value, which need not be an impact present in any list.
func (ix *Index) MaxImpact() float64 { return ix.maxImpact }

// NumPostings returns the total posting count across all inverted
// lists — the segment-size metric of the Live merge policy.
func (ix *Index) NumPostings() int {
	n := 0
	for _, list := range ix.lists {
		n += len(list)
	}
	return n
}

// offsetDocs shifts every posting's document id by base and widens
// NumDocs into the matching doc-id bound, turning a locally built index
// (dense ids from 0) into a segment of a larger global id space.
func (ix *Index) offsetDocs(base DocID) {
	for _, list := range ix.lists {
		for i := range list {
			list[i].Doc += base
		}
	}
	ix.NumDocs += int(base)
}

// Builder accumulates documents and produces an Index.
type Builder struct {
	// Scoring selects the similarity function (cosine Equation 3 by
	// default, or Okapi BM25); see bm25.go.
	Scoring Scoring
	// BM25 parameterizes ScoringBM25; zero value selects DefaultBM25.
	BM25  BM25Params
	terms map[string]int
	vocab []string
	// freqs[i] maps doc -> f_{d,t} during collection.
	freqs  []map[DocID]int32
	docLen []int32
	// tokLen[d] is the token count of document d (BM25's dl).
	tokLen  []int32
	numDocs int
	// QuantLevels sets the integer quantization resolution; impacts map
	// to 1..QuantLevels. Default 255.
	QuantLevels int32
	// Scale pins the quantization scale — the raw impact that maps to
	// QuantLevels — instead of deriving it from this build's own maximum
	// impact. A segmented Live set quantizes every segment against the
	// scale pinned at engine creation so that quantized impacts (the
	// homomorphic exponents E(u)^p) stay comparable across segments;
	// impacts above the pinned scale clamp to QuantLevels. 0 derives the
	// scale from the data, the single-index behavior.
	Scale float64
}

// NewBuilder returns an empty Builder with default quantization.
func NewBuilder() *Builder {
	return &Builder{terms: make(map[string]int), QuantLevels: 255}
}

// Add indexes one document given its analyzed token stream. Documents
// must be added with consecutive DocIDs starting at 0.
func (b *Builder) Add(doc DocID, tokens []string) {
	if int(doc) != b.numDocs {
		panic(fmt.Sprintf("index: documents must be added in order; got %d want %d", doc, b.numDocs))
	}
	b.numDocs++
	seen := 0
	for _, tok := range tokens {
		ti, ok := b.terms[tok]
		if !ok {
			ti = len(b.vocab)
			b.terms[tok] = ti
			b.vocab = append(b.vocab, tok)
			b.freqs = append(b.freqs, make(map[DocID]int32))
		}
		if b.freqs[ti][doc] == 0 {
			seen++
		}
		b.freqs[ti][doc]++
	}
	b.docLen = append(b.docLen, int32(seen))
	b.tokLen = append(b.tokLen, int32(len(tokens)))
}

// Build computes impacts, quantizes them, orders the lists and returns
// the finished index. The Builder must not be reused afterwards.
func (b *Builder) Build() *Index {
	n := float64(b.numDocs)
	// First pass: per-document normalizer W_d = sqrt(Σ w_{d,t}²).
	// Equation 3 sums the squared DOCUMENT weights only — w_t does not
	// enter the normalizer.
	wd := make([]float64, b.numDocs)
	for ti := range b.vocab {
		for d, fdt := range b.freqs[ti] {
			wdt := 1 + math.Log(float64(fdt))
			wd[d] += wdt * wdt
		}
	}
	for d := range wd {
		wd[d] = math.Sqrt(wd[d])
	}
	// Second pass: impacts.
	ix := &Index{
		NumDocs:     b.numDocs,
		terms:       b.terms,
		vocab:       b.vocab,
		lists:       make([][]Posting, len(b.vocab)),
		docLen:      b.docLen,
		QuantLevels: b.QuantLevels,
	}
	bmp := b.BM25
	if bmp == (BM25Params{}) {
		bmp = DefaultBM25()
	}
	avgdl := 0.0
	for _, l := range b.tokLen {
		avgdl += float64(l)
	}
	if b.numDocs > 0 {
		avgdl /= float64(b.numDocs)
	}
	maxImpact := 0.0
	for ti := range b.vocab {
		ft := float64(len(b.freqs[ti]))
		wt := math.Log(1 + n/ft)
		list := make([]Posting, 0, len(b.freqs[ti]))
		for d, fdt := range b.freqs[ti] {
			var imp float64
			switch b.Scoring {
			case ScoringBM25:
				imp = bm25Impact(bmp, n, ft, float64(fdt), float64(b.tokLen[d]), avgdl)
			default:
				wdt := 1 + math.Log(float64(fdt))
				imp = wdt * wt / wd[d]
			}
			if imp > maxImpact {
				maxImpact = imp
			}
			list = append(list, Posting{Doc: d, Impact: imp})
		}
		ix.lists[ti] = list
	}
	scale := b.Scale
	if scale <= 0 {
		scale = maxImpact
	}
	ix.maxImpact = scale
	// Quantize to 1..QuantLevels and order by decreasing impact (ties by
	// ascending doc for determinism).
	for ti, list := range ix.lists {
		for i := range list {
			q := int32(math.Ceil(list[i].Impact / scale * float64(b.QuantLevels)))
			if q < 1 {
				q = 1
			}
			if q > b.QuantLevels {
				q = b.QuantLevels
			}
			list[i].Quantized = q
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Impact != list[j].Impact {
				return list[i].Impact > list[j].Impact
			}
			return list[i].Doc < list[j].Doc
		})
		ix.lists[ti] = list
	}
	b.freqs = nil
	return ix
}

// Result is one scored document.
type Result struct {
	Doc   DocID
	Score float64
}

// TopK evaluates a plaintext query (a set of term numbers) with the
// impact-ordered algorithm of Figure 10 and returns the k highest-scoring
// documents in decreasing score order (ties by ascending DocID).
func (ix *Index) TopK(queryTerms []int, k int) []Result {
	var pq impactHeap
	for _, ti := range queryTerms {
		if ti < 0 || ti >= len(ix.lists) || len(ix.lists[ti]) == 0 {
			continue
		}
		pq = append(pq, cursorRef{list: ix.lists[ti], pos: 0})
	}
	heap.Init(&pq)
	acc := make(map[DocID]float64)
	for pq.Len() > 0 {
		top := &pq[0]
		p := top.list[top.pos]
		acc[p.Doc] += p.Impact
		top.pos++
		if top.pos >= len(top.list) {
			heap.Pop(&pq)
		} else {
			heap.Fix(&pq, 0)
		}
	}
	return topKFromAccumulators(acc, k)
}

// QuantizedTopK evaluates the query over quantized impacts, mirroring what
// the private retrieval scheme computes homomorphically. Used to verify
// Claim 1 (rank preservation) in tests.
func (ix *Index) QuantizedTopK(queryTerms []int, k int) []Result {
	acc := make(map[DocID]float64)
	for _, ti := range queryTerms {
		if ti < 0 || ti >= len(ix.lists) {
			continue
		}
		for _, p := range ix.lists[ti] {
			acc[p.Doc] += float64(p.Quantized)
		}
	}
	return topKFromAccumulators(acc, k)
}

func topKFromAccumulators(acc map[DocID]float64, k int) []Result {
	res := make([]Result, 0, len(acc))
	for d, s := range acc {
		res = append(res, Result{Doc: d, Score: s})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].Doc < res[j].Doc
	})
	if k > 0 && len(res) > k {
		res = res[:k]
	}
	return res
}

type cursorRef struct {
	list []Posting
	pos  int
}

// impactHeap orders cursors by the impact at their current position,
// highest first.
type impactHeap []cursorRef

func (h impactHeap) Len() int { return len(h) }
func (h impactHeap) Less(i, j int) bool {
	return h[i].list[h[i].pos].Impact > h[j].list[h[j].pos].Impact
}
func (h impactHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *impactHeap) Push(x interface{}) { *h = append(*h, x.(cursorRef)) }
func (h *impactHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Package sequence implements Algorithm 1 of Pang, Ding and Xiao (VLDB
// 2010): sequencing the dictionary so that semantically related terms are
// clustered near each other.
//
// Synsets are processed in decreasing connectivity (relation count); each
// seed synset pulls its directly related synsets into the same growing
// sequence, in the order derivational relations, antonyms, hyponyms,
// hypernyms, meronyms, holonyms. Domain-membership relations are skipped,
// as those word associations tend to be less direct (Section 3.3).
// Sequences containing terms of the same synset are concatenated as they
// are discovered; the paper reports that on the WordNet noun database the
// algorithm converges to a single long sequence, since every noun
// ultimately generalizes to 'entity'.
//
// The paper does not specify where a concatenated sequence is joined. We
// splice the smaller sequence immediately after the synset that triggered
// the merge, which maximizes the clustering objective and reproduces the
// paper's published sequence snippets (e.g. '... myosarcoma, ...,
// rhabdomyosarcoma, rhabdosarcoma, ...'): a late-seeded leaf lands next to
// its hypernym rather than at an arbitrary end of the host sequence.
// Sequences are held as linked lists so every splice is O(1).
package sequence

import (
	"embellish/internal/wordnet"
)

// sequencer carries the mutable state of Algorithm 1. Sequences are
// singly-linked chains of terms (next[t] is the term after t, or -1),
// identified by ids that merge through a union-find alias table.
type sequencer struct {
	db *wordnet.Database
	// seqOf[t] is the id of the sequence containing term t, or -1. Ids
	// are resolved through alias.
	seqOf []int32
	next  []int32
	// head[id], tail[id] delimit sequence id's chain (valid only for ids
	// that resolve to themselves).
	head, tail []int32
	// processedTerm / processedSynset implement the "mark as processed"
	// bookkeeping of Algorithm 1.
	processedTerm   []bool
	processedSynset []bool
	// alias resolves merged sequence ids to their surviving id.
	alias []int32
	// created records sequence ids in creation order, for deterministic
	// output.
	created []int32
}

// Vocab runs Algorithm 1 (SequenceVocab) over the database and returns the
// resulting term sequences. Every term of db appears in exactly one
// returned sequence, exactly once.
func Vocab(db *wordnet.Database) [][]wordnet.TermID {
	return VocabWeighted(db, db.RelatedInOrder)
}

// VocabWeighted is the Appendix C variant of Algorithm 1: line 18's
// fixed type order is replaced by a caller-supplied neighbor function
// that yields each seed's related synsets strongest-first (typically
// merging the WordNet relations with corpus-extracted ones rated on a
// common strength scale — see internal/relex). VocabWeighted with
// db.RelatedInOrder is exactly Vocab.
func VocabWeighted(db *wordnet.Database, neighbors func(wordnet.SynsetID) []wordnet.SynsetID) [][]wordnet.TermID {
	s := &sequencer{
		db:              db,
		seqOf:           make([]int32, db.NumTerms()),
		next:            make([]int32, db.NumTerms()),
		processedTerm:   make([]bool, db.NumTerms()),
		processedSynset: make([]bool, db.NumSynsets()),
	}
	for i := range s.seqOf {
		s.seqOf[i] = -1
		s.next[i] = -1
	}

	// Line 12: order the synsets in decreasing number of relationships.
	// Lines 16-21 are literal: every unprocessed synset in that order
	// seeds a ProcessSynset call, then its DIRECT related synsets (one
	// level, not a recursive traversal) are pulled into the sequence in
	// order of closeness. Deeper neighborhoods are reached when their
	// members come up later in the outer connectivity-ordered loop, so
	// high-connectivity synsets at every depth anchor their own local
	// clusters — this interleaving is what keeps term specificity roughly
	// stationary along the final sequence.
	for _, seed := range db.SynsetsByConnectivity() {
		if s.processedSynset[seed] {
			continue
		}
		// Line 17: seed a sequence from this synset.
		sq := s.processSynset(seed, -1)
		// Line 18: visit the seed's related synsets in order of closeness
		// (derivations, antonyms, hyponyms, hypernyms, meronyms,
		// holonyms; domain links skipped). Already-processed synsets are
		// NOT skipped: line 19 appends one of their terms into sq, which
		// puts the synset's terms in two sequences, and lines 1-3 of
		// ProcessSynset then concatenate those sequences. We implement
		// that append-then-concatenate dance's net effect by passing sq
		// as a forced host.
		for _, rel := range neighbors(seed) {
			// Lines 19-21: pull the related synset into sq; the returned
			// sequence becomes the target for the remaining related
			// synsets (the algorithm reassigns sq).
			sq = s.processSynset(rel, sq)
		}
	}

	// Collect surviving sequences in creation order.
	var out [][]wordnet.TermID
	for _, id := range s.created {
		if s.resolve(id) != id || s.head[id] < 0 {
			continue // merged away or empty
		}
		var terms []wordnet.TermID
		for t := s.head[id]; t >= 0; t = s.next[t] {
			terms = append(terms, wordnet.TermID(t))
		}
		if len(terms) > 0 {
			out = append(out, terms)
		}
	}
	return out
}

// Flatten concatenates the sequences produced by Vocab into the single
// long term sequence consumed by bucket formation (Algorithm 2 line 1).
func Flatten(seqs [][]wordnet.TermID) []wordnet.TermID {
	n := 0
	for _, s := range seqs {
		n += len(s)
	}
	out := make([]wordnet.TermID, 0, n)
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

// Run is a convenience wrapper: sequence the vocabulary and flatten it.
func Run(db *wordnet.Database) []wordnet.TermID {
	return Flatten(Vocab(db))
}

// processSynset implements ProcessSynset(ss) of Algorithm 1 and returns
// the id of the sequence now holding the synset's terms. forced, when
// >= 0, is an additional host sequence: it models line 19 having just
// appended one of ss's terms into that sequence, so that lines 1-3
// concatenate it with the synset's other host sequences.
func (s *sequencer) processSynset(ss wordnet.SynsetID, forced int32) int32 {
	terms := s.db.Synset(ss).Terms

	// Find the distinct existing sequences containing any term of ss,
	// and the first placed term (the splice anchor).
	var hosts []int32
	anchor := int32(-1)
	for _, t := range terms {
		if id := s.seqOf[t]; id >= 0 {
			id = s.resolve(id)
			if anchor < 0 {
				anchor = int32(t)
			}
			if !contains(hosts, id) {
				hosts = append(hosts, id)
			}
		}
	}
	if forced >= 0 {
		if id := s.resolve(forced); !contains(hosts, id) {
			hosts = append(hosts, id)
		}
	}

	var sq int32
	switch {
	case len(hosts) > 1:
		// Lines 1-3: terms span multiple sequences; concatenate them.
		// The splice point is the synset's first placed term when it
		// lives in the survivor; see the package comment.
		sq = s.merge(hosts, anchor)
	case len(hosts) == 0:
		// Lines 4-5: start a new sequence.
		sq = s.newSeq()
	default:
		// Lines 6-7: extend the single existing sequence.
		sq = hosts[0]
	}

	// Line 8: append the unprocessed terms of ss to sq. When the synset
	// already has a placed term we insert next to it, keeping synonyms
	// adjacent (the paper's snippets show whole synsets contiguous);
	// otherwise terms go to the tail.
	at := anchor
	for _, t := range terms {
		if !s.processedTerm[t] {
			s.insertTerm(sq, t, at)
			at = int32(t)
		}
	}
	// Lines 9-10: mark the terms and the synset as processed.
	s.processedSynset[ss] = true
	return sq
}

func contains(ids []int32, id int32) bool {
	for _, h := range ids {
		if h == id {
			return true
		}
	}
	return false
}

func (s *sequencer) newSeq() int32 {
	id := int32(len(s.head))
	s.head = append(s.head, -1)
	s.tail = append(s.tail, -1)
	s.alias = append(s.alias, id)
	s.created = append(s.created, id)
	return id
}

func (s *sequencer) resolve(id int32) int32 {
	for s.alias[id] != id {
		s.alias[id] = s.alias[s.alias[id]] // path halving
		id = s.alias[id]
	}
	return id
}

// insertTerm places unprocessed term t into sequence sq, immediately
// after term `after` when that term belongs to sq, else at the tail.
func (s *sequencer) insertTerm(sq int32, t wordnet.TermID, after int32) {
	if s.seqOf[t] >= 0 {
		return // already placed; a term is never moved
	}
	ti := int32(t)
	s.seqOf[ti] = sq
	s.processedTerm[ti] = true
	if after >= 0 && s.resolve(s.seqOf[after]) == sq {
		s.next[ti] = s.next[after]
		s.next[after] = ti
		if s.tail[sq] == after {
			s.tail[sq] = ti
		}
		return
	}
	if s.head[sq] < 0 {
		s.head[sq], s.tail[sq] = ti, ti
		return
	}
	s.next[s.tail[sq]] = ti
	s.tail[sq] = ti
}

// merge concatenates the host sequences into one surviving sequence. When
// anchor (a term of the triggering synset) lives in the survivor, the
// other sequences are spliced immediately after it; otherwise they are
// appended at the tail. The survivor is the host of the anchor when there
// is one, else the first host.
func (s *sequencer) merge(hosts []int32, anchor int32) int32 {
	surv := hosts[0]
	if anchor >= 0 {
		surv = s.resolve(s.seqOf[anchor])
	}
	at := anchor
	if at < 0 || s.resolve(s.seqOf[at]) != surv {
		at = s.tail[surv]
	}
	for _, h := range hosts {
		if h == surv || s.head[h] < 0 {
			s.alias[h] = surv
			continue
		}
		// Splice chain h after position at in surv.
		hHead, hTail := s.head[h], s.tail[h]
		if at < 0 { // surv empty
			s.head[surv], s.tail[surv] = hHead, hTail
		} else {
			s.next[hTail] = s.next[at]
			s.next[at] = hHead
			if s.tail[surv] == at {
				s.tail[surv] = hTail
			}
		}
		at = hTail
		s.head[h], s.tail[h] = -1, -1
		s.alias[h] = surv
	}
	return surv
}

package sequence

import (
	"fmt"
	"testing"

	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

// checkPartition verifies every term appears in exactly one sequence,
// exactly once — the core invariant of Algorithm 1.
func checkPartition(t *testing.T, db *wordnet.Database, seqs [][]wordnet.TermID) {
	t.Helper()
	seen := make(map[wordnet.TermID]int)
	total := 0
	for _, s := range seqs {
		for _, term := range s {
			seen[term]++
			total++
		}
	}
	if total != db.NumTerms() {
		t.Fatalf("sequences hold %d terms, dictionary has %d", total, db.NumTerms())
	}
	for term, n := range seen {
		if n != 1 {
			t.Fatalf("term %d (%q) appears %d times", term, db.Lemma(term), n)
		}
	}
}

func TestVocabPartitionMini(t *testing.T) {
	db := wordnet.MiniLexicon()
	checkPartition(t, db, Vocab(db))
}

func TestVocabPartitionSynthetic(t *testing.T) {
	db := wngen.Generate(wngen.ScaledConfig(4000, 21))
	checkPartition(t, db, Vocab(db))
}

func TestFewSequencesForConnectedHierarchy(t *testing.T) {
	// Running on WordNet, "the algorithm groups all the 117,798 nouns
	// into one long sequence" (Section 3.3). That is an empirical
	// observation, not an invariant of Algorithm 1: an edge between two
	// synsets that were both absorbed as related synsets (neither ever
	// seeding) is never examined, so sparse corners of a hierarchy can
	// stay separate. On the mini lexicon the algorithm must still
	// collapse the vast majority of the vocabulary into one dominant
	// sequence.
	db := wordnet.MiniLexicon()
	seqs := Vocab(db)
	if len(seqs) > db.NumSynsets()/10 {
		t.Fatalf("connected hierarchy produced %d sequences over %d synsets; clusters are not merging",
			len(seqs), db.NumSynsets())
	}
	largest := 0
	for _, s := range seqs {
		if len(s) > largest {
			largest = len(s)
		}
	}
	if largest < db.NumTerms()/2 {
		t.Fatalf("dominant sequence holds %d of %d terms, want a majority", largest, db.NumTerms())
	}
}

func TestSingleSequenceWhenEverySynsetSeeds(t *testing.T) {
	// A chain whose nodes have strictly decreasing connectivity (node i
	// carries 12-i leaf children) is processed strictly top-down: chain
	// node i+1 is pulled when it seeds (or when node i seeds) and every
	// chain edge is examined, so the whole graph must collapse into
	// exactly one sequence.
	db := wordnet.NewDatabase()
	var prev wordnet.SynsetID = -1
	for i := 0; i < 10; i++ {
		ss := db.AddSynset([]wordnet.TermID{db.AddTerm(fmt.Sprintf("chain%d", i))}, "")
		for j := 0; j < 12-i; j++ {
			leaf := db.AddSynset([]wordnet.TermID{db.AddTerm(fmt.Sprintf("leaf%d-%d", i, j))}, "")
			db.AddRelation(ss, leaf, wordnet.RelHyponym)
		}
		if prev >= 0 {
			db.AddRelation(prev, ss, wordnet.RelHyponym)
		}
		prev = ss
	}
	db.Freeze()
	seqs := Vocab(db)
	if len(seqs) != 1 {
		t.Fatalf("chain produced %d sequences, want 1", len(seqs))
	}
	checkPartition(t, db, seqs)
}

func TestDisconnectedComponentsStaySeparate(t *testing.T) {
	db := wordnet.NewDatabase()
	a := db.AddSynset([]wordnet.TermID{db.AddTerm("alpha")}, "")
	a2 := db.AddSynset([]wordnet.TermID{db.AddTerm("alpha-child")}, "")
	db.AddRelation(a, a2, wordnet.RelHyponym)
	b := db.AddSynset([]wordnet.TermID{db.AddTerm("beta")}, "")
	b2 := db.AddSynset([]wordnet.TermID{db.AddTerm("beta-child")}, "")
	db.AddRelation(b, b2, wordnet.RelHyponym)
	db.Freeze()
	seqs := Vocab(db)
	if len(seqs) != 2 {
		t.Fatalf("two disconnected components produced %d sequences, want 2", len(seqs))
	}
	checkPartition(t, db, seqs)
}

func TestRelatedTermsCluster(t *testing.T) {
	// Section 3.3's snippets show sibling cancers adjacent in the
	// sequence. Verify sibling synsets land close: any two terms in the
	// same synset or sibling synsets should be within a window far
	// smaller than the dictionary size.
	db := wordnet.MiniLexicon()
	seq := Run(db)
	pos := make(map[wordnet.TermID]int)
	for i, t := range seq {
		pos[t] = i
	}
	pairs := [][2]string{
		{"osteosarcoma", "osteogenic sarcoma"}, // same synset
		{"osteosarcoma", "rhabdomyosarcoma"},   // cousins under sarcoma
		{"hypocapnia", "hypercapnia"},          // antonyms
		{"amaranthaceae", "batidaceae"},        // sibling families
		{"abu sayyaf", "aksa martyrs brigades"},
	}
	window := db.NumTerms() / 4
	for _, p := range pairs {
		a, ok1 := db.Lookup(p[0])
		b, ok2 := db.Lookup(p[1])
		if !ok1 || !ok2 {
			t.Fatalf("lexicon missing %v", p)
		}
		d := pos[a] - pos[b]
		if d < 0 {
			d = -d
		}
		if d > window {
			t.Errorf("related terms %q and %q are %d apart (window %d)", p[0], p[1], d, window)
		}
	}
}

func TestSynonymsAdjacent(t *testing.T) {
	// Terms of one synset are appended together (Algorithm 1 line 8), so
	// synonyms should be nearly adjacent.
	db := wordnet.MiniLexicon()
	seq := Run(db)
	pos := make(map[wordnet.TermID]int)
	for i, t := range seq {
		pos[t] = i
	}
	a, _ := db.Lookup("hypercapnia")
	b, _ := db.Lookup("hypercarbia")
	d := pos[a] - pos[b]
	if d < 0 {
		d = -d
	}
	if d > 3 {
		t.Fatalf("synonyms %d apart, want adjacent", d)
	}
}

func TestFlattenPreservesOrder(t *testing.T) {
	in := [][]wordnet.TermID{{3, 1}, {}, {2}}
	out := Flatten(in)
	want := []wordnet.TermID{3, 1, 2}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Flatten[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	db := wngen.Generate(wngen.ScaledConfig(1500, 33))
	a := Run(db)
	b := Run(db)
	if len(a) != len(b) {
		t.Fatal("nondeterministic sequence length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestEmptyDatabase(t *testing.T) {
	db := wordnet.NewDatabase()
	db.Freeze()
	if seqs := Vocab(db); len(seqs) != 0 {
		t.Fatalf("empty database yielded %d sequences", len(seqs))
	}
}

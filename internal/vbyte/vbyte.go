// Package vbyte implements variable-byte (vbyte) integer coding, the
// standard compression for inverted files (Zobel & Moffat [29], the
// survey the paper builds its index on). Inverted lists store document
// gaps and quantized impacts as unsigned integers; vbyte keeps them
// compact on disk while remaining trivially seekable block-by-block.
//
// Encoding: seven payload bits per byte, little-endian groups, high bit
// set on the final byte of each integer (the common IR convention).
package vbyte

import (
	"errors"
	"fmt"
)

// MaxLen is the worst-case encoded size of a uint64.
const MaxLen = 10

// Append encodes v and appends it to dst, returning the extended slice.
func Append(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v&0x7f))
		v >>= 7
	}
	return append(dst, byte(v)|0x80)
}

// Decode reads one integer from buf, returning the value and the number
// of bytes consumed. Non-canonical (overlong) encodings are rejected:
// the decoder feeds protocol surfaces where accepting several byte
// sequences for one value is a malleability hazard.
func Decode(buf []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, b := range buf {
		if i == MaxLen {
			return 0, 0, errors.New("vbyte: value overruns 10 bytes")
		}
		if b&0x80 != 0 {
			if b&0x7f == 0 && i > 0 {
				return 0, 0, errors.New("vbyte: non-canonical encoding (trailing zero group)")
			}
			if shift >= 64 || (shift == 63 && b&0x7f > 1) {
				return 0, 0, errors.New("vbyte: value overflows uint64")
			}
			return v | uint64(b&0x7f)<<shift, i + 1, nil
		}
		v |= uint64(b) << shift
		shift += 7
		if shift >= 64 {
			return 0, 0, errors.New("vbyte: value overflows uint64")
		}
	}
	return 0, 0, errors.New("vbyte: truncated value")
}

// AppendSlice encodes a length-prefixed sequence of integers.
func AppendSlice(dst []byte, vs []uint64) []byte {
	dst = Append(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = Append(dst, v)
	}
	return dst
}

// DecodeSlice reads a length-prefixed sequence, returning the values and
// bytes consumed. maxLen bounds the declared length to defend against
// corrupt or hostile input.
func DecodeSlice(buf []byte, maxLen int) ([]uint64, int, error) {
	n64, used, err := Decode(buf)
	if err != nil {
		return nil, 0, fmt.Errorf("vbyte: slice length: %w", err)
	}
	if n64 > uint64(maxLen) {
		return nil, 0, fmt.Errorf("vbyte: declared length %d exceeds limit %d", n64, maxLen)
	}
	out := make([]uint64, n64)
	off := used
	for i := range out {
		v, n, err := Decode(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("vbyte: element %d: %w", i, err)
		}
		out[i] = v
		off += n
	}
	return out, off, nil
}

// AppendGaps delta-encodes a strictly increasing sequence (document
// numbers) as first value + gaps, the classic inverted-list layout.
func AppendGaps(dst []byte, sorted []uint64) ([]byte, error) {
	dst = Append(dst, uint64(len(sorted)))
	prev := uint64(0)
	for i, v := range sorted {
		if i > 0 && v <= prev {
			return nil, fmt.Errorf("vbyte: sequence not strictly increasing at %d (%d after %d)", i, v, prev)
		}
		if i == 0 {
			dst = Append(dst, v)
		} else {
			dst = Append(dst, v-prev)
		}
		prev = v
	}
	return dst, nil
}

// DecodeGaps reverses AppendGaps.
func DecodeGaps(buf []byte, maxLen int) ([]uint64, int, error) {
	vals, used, err := DecodeSlice(buf, maxLen)
	if err != nil {
		return nil, 0, err
	}
	for i := 1; i < len(vals); i++ {
		vals[i] += vals[i-1]
	}
	return vals, used, nil
}

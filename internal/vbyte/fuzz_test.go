package vbyte

import (
	"bytes"
	"testing"
)

// FuzzDecode: Decode must never panic on arbitrary input, and whatever
// it accepts must re-encode to the bytes it consumed.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add([]byte{0x7f, 0xff})
	f.Add(Append(nil, 1<<40))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := Append(nil, v)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
		}
	})
}

// FuzzDecodeGaps: arbitrary input must not panic, and accepted output
// must be strictly increasing.
func FuzzDecodeGaps(f *testing.F) {
	seed, _ := AppendGaps(nil, []uint64{1, 5, 9})
	f.Add(seed)
	f.Add([]byte{0x83, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, _, err := DecodeGaps(data, 1024)
		if err != nil {
			return
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("decoded gaps not monotone at %d", i)
			}
		}
	})
}

package vbyte

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripValues(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 255, 16383, 16384, 1 << 21, 1 << 28, math.MaxUint32, math.MaxUint64}
	for _, v := range cases {
		buf := Append(nil, v)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%d: %v", v, err)
		}
		if got != v || n != len(buf) {
			t.Fatalf("%d: decoded %d (%d bytes of %d)", v, got, n, len(buf))
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		got, _, err := Decode(Append(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizes(t *testing.T) {
	// Seven payload bits per byte.
	sizes := map[uint64]int{0: 1, 127: 1, 128: 2, 16383: 2, 16384: 3, math.MaxUint64: 10}
	for v, want := range sizes {
		if got := len(Append(nil, v)); got != want {
			t.Fatalf("size(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	// Continuation bytes forever: truncated.
	if _, _, err := Decode([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Fatal("unterminated value accepted")
	}
	// 11 continuation bytes: overruns MaxLen.
	long := make([]byte, 11)
	if _, _, err := Decode(long); err == nil {
		t.Fatal("overlong value accepted")
	}
	// Overflow: 10 bytes all carrying payload into bit 70.
	over := []byte{0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0xff}
	if _, _, err := Decode(over); err == nil {
		t.Fatal("overflowing value accepted")
	}
}

func TestSliceRoundTrip(t *testing.T) {
	vs := []uint64{5, 0, 300, 1 << 40}
	buf := AppendSlice(nil, vs)
	got, used, err := DecodeSlice(buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) || len(got) != len(vs) {
		t.Fatalf("used %d of %d, %d values", used, len(buf), len(got))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], vs[i])
		}
	}
}

func TestSliceLengthLimit(t *testing.T) {
	buf := AppendSlice(nil, make([]uint64, 50))
	if _, _, err := DecodeSlice(buf, 10); err == nil {
		t.Fatal("oversized slice accepted")
	}
}

func TestGapsRoundTrip(t *testing.T) {
	sorted := []uint64{3, 4, 10, 1000, 1001}
	buf, err := AppendGaps(nil, sorted)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeGaps(buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], sorted[i])
		}
	}
}

func TestGapsRejectNonIncreasing(t *testing.T) {
	if _, err := AppendGaps(nil, []uint64{5, 5}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := AppendGaps(nil, []uint64{5, 3}); err == nil {
		t.Fatal("decreasing accepted")
	}
}

func TestGapsCompress(t *testing.T) {
	// Dense doc numbers compress far below 8 bytes per entry.
	sorted := make([]uint64, 1000)
	for i := range sorted {
		sorted[i] = uint64(1000 + 3*i)
	}
	buf, err := AppendGaps(nil, sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 1200 {
		t.Fatalf("1000 dense postings encoded to %d bytes; compression broken", len(buf))
	}
}

func TestGapsEmpty(t *testing.T) {
	buf, err := AppendGaps(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeGaps(buf, 10)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty gaps round-trip: %v, %d values", err, len(got))
	}
}

func TestDecodeRejectsNonCanonical(t *testing.T) {
	// 0x30 0x80 is an overlong encoding of 48 (a trailing zero
	// continuation group); only 0xb0 is canonical. Found by FuzzDecode.
	if _, _, err := Decode([]byte{0x30, 0x80}); err == nil {
		t.Fatal("overlong encoding accepted")
	}
	// The genuinely canonical single zero byte still decodes.
	v, n, err := Decode([]byte{0x80})
	if err != nil || v != 0 || n != 1 {
		t.Fatalf("canonical zero: %d,%d,%v", v, n, err)
	}
	// And 128 = [0x00 0x81] (final group nonzero) is canonical.
	v, n, err = Decode([]byte{0x00, 0x81})
	if err != nil || v != 128 || n != 2 {
		t.Fatalf("canonical 128: %d,%d,%v", v, n, err)
	}
}

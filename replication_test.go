package embellish

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"

	"embellish/internal/wal"
)

// dialNetServer serves srv on a loopback listener and returns a
// connected client, with both torn down at test end.
func dialNetServer(t *testing.T, srv *NetServer) net.Conn {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// replPair builds a primary and a replica from the SAME engine bytes
// (the template-file contract: identical organization, dictionary and
// scale), each with its own durable directory.
func replPair(t *testing.T) (primary, replica *Engine, texts map[int]string) {
	t.Helper()
	seed, texts := durableStoreWorld(t, t.TempDir(), 24, 128)
	var buf bytes.Buffer
	if err := seed.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	load := func() *Engine {
		e, err := LoadEngine(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.EnableDurability(durableOpts(t.TempDir())); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	return load(), load(), texts
}

func replCatchUp(t *testing.T, primary, replica *Engine) int {
	t.Helper()
	applied := 0
	for {
		st, _ := replica.WALStatus()
		c, err := primary.WALRecordsAfter(st.Seq, 0)
		if err != nil {
			t.Fatalf("WALRecordsAfter(%d): %v", st.Seq, err)
		}
		n, err := replica.ApplyReplicated(c.Records)
		if err != nil {
			t.Fatalf("ApplyReplicated: %v", err)
		}
		applied += n
		if !c.More && c.LastSeq >= c.PrimarySeq {
			return applied
		}
	}
}

func TestReplicationConverges(t *testing.T) {
	primary, replica, _ := replPair(t)
	lemmas := miniLemmas()
	base := primary.NextDocID()
	for i := 0; i < 5; i++ {
		id := primary.NextDocID()
		if err := primary.AddDocuments([]Document{{ID: id, Text: storeDocText(id, lemmas)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.DeleteDocuments([]int{base, base + 2}); err != nil {
		t.Fatal(err)
	}

	applied := replCatchUp(t, primary, replica)
	if applied != 6 {
		t.Fatalf("applied %d ops, want 6", applied)
	}
	pst, _ := primary.WALStatus()
	rst, _ := replica.WALStatus()
	if pst.Seq != rst.Seq {
		t.Fatalf("replica at seq %d, primary at %d", rst.Seq, pst.Seq)
	}
	if primary.NumDocs() != replica.NumDocs() || primary.NextDocID() != replica.NextDocID() {
		t.Fatalf("replica corpus diverged: %d/%d docs, next %d/%d",
			replica.NumDocs(), primary.NumDocs(), replica.NextDocID(), primary.NextDocID())
	}
	// The replica answers queries with the primary's rankings.
	pRank, err := primary.PlaintextSearch(lemmas[1]+" "+lemmas[4], 10)
	if err != nil {
		t.Fatal(err)
	}
	rRank, err := replica.PlaintextSearch(lemmas[1]+" "+lemmas[4], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pRank) != len(rRank) {
		t.Fatalf("rank lengths %d vs %d", len(pRank), len(rRank))
	}
	for i := range pRank {
		if pRank[i] != rRank[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, pRank[i], rRank[i])
		}
	}
}

func TestWALRecordsAfterEdges(t *testing.T) {
	primary, _, _ := replPair(t)
	st, _ := primary.WALStatus()
	// Caught up: empty chunk, LastSeq echoes the cursor.
	c, err := primary.WALRecordsAfter(st.Seq, 0)
	if err != nil || len(c.Records) != 0 || c.LastSeq != st.Seq || c.More {
		t.Fatalf("caught-up chunk: %+v err %v", c, err)
	}
	// A replica claiming the future is broken, not behind.
	if _, err := primary.WALRecordsAfter(st.Seq+10, 0); err == nil {
		t.Fatal("future cursor accepted")
	}
	// Non-durable engines have no journal to ship.
	plain, _ := testEngine(t)
	if _, err := plain.WALRecordsAfter(0, 0); err == nil {
		t.Fatal("non-durable engine shipped records")
	}
}

func TestWALRecordsAfterChunking(t *testing.T) {
	primary, replica, _ := replPair(t)
	lemmas := miniLemmas()
	for i := 0; i < 4; i++ {
		id := primary.NextDocID()
		if err := primary.AddDocuments([]Document{{ID: id, Text: storeDocText(id, lemmas)}}); err != nil {
			t.Fatal(err)
		}
	}
	// A 1-byte cap forces one record per pull; the replica still
	// converges by looping on More.
	pulls := 0
	for {
		st, _ := replica.WALStatus()
		c, err := primary.WALRecordsAfter(st.Seq, 1)
		if err != nil {
			t.Fatal(err)
		}
		pulls++
		if _, err := replica.ApplyReplicated(c.Records); err != nil {
			t.Fatal(err)
		}
		if !c.More && c.LastSeq >= c.PrimarySeq {
			break
		}
		if pulls > 20 {
			t.Fatal("capped replication not converging")
		}
	}
	if pulls < 4 {
		t.Fatalf("1-byte cap converged in %d pulls", pulls)
	}
	pst, _ := primary.WALStatus()
	rst, _ := replica.WALStatus()
	if pst.Seq != rst.Seq {
		t.Fatalf("replica at %d, primary at %d", rst.Seq, pst.Seq)
	}
}

func TestApplyReplicatedDuplicatesAndGaps(t *testing.T) {
	primary, replica, _ := replPair(t)
	lemmas := miniLemmas()
	id := primary.NextDocID()
	if err := primary.AddDocuments([]Document{{ID: id, Text: storeDocText(id, lemmas)}}); err != nil {
		t.Fatal(err)
	}
	st, _ := replica.WALStatus()
	c, err := primary.WALRecordsAfter(st.Seq, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := replica.ApplyReplicated(c.Records); err != nil || n != 1 {
		t.Fatalf("first apply: %d ops, %v", n, err)
	}
	// Re-applying the same chunk is a no-op, not a failure — pulls may
	// overlap after a reconnect.
	if n, err := replica.ApplyReplicated(c.Records); err != nil || n != 0 {
		t.Fatalf("duplicate apply: %d ops, %v", n, err)
	}
	// A gap (records from the future) must be refused, or the replica
	// would silently fork from the primary's history.
	rst, _ := replica.WALStatus()
	gap, err := wal.EncodeRecord(&wal.Record{
		Op:   wal.OpAddDocs,
		Seq:  rst.Seq + 2,
		Docs: []wal.DocText{{ID: uint32(replica.NextDocID()), Text: []byte("x")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.ApplyReplicated(gap); err == nil {
		t.Fatal("sequence gap applied")
	}
}

func TestAnswerWALPullOverWire(t *testing.T) {
	primary, replica, _ := replPair(t)
	lemmas := miniLemmas()
	id := primary.NextDocID()
	if err := primary.AddDocuments([]Document{{ID: id, Text: storeDocText(id, lemmas)}}); err != nil {
		t.Fatal(err)
	}

	srv := primary.NewNetServer(ServeConfig{AllowReplication: true})
	client := dialNetServer(t, srv)

	st, _ := replica.WALStatus()
	c, err := PullWAL(client, st.Seq)
	if err != nil {
		t.Fatalf("PullWAL: %v", err)
	}
	if n, err := replica.ApplyReplicated(c.Records); err != nil || n != 1 {
		t.Fatalf("apply pulled chunk: %d ops, %v", n, err)
	}
	rst, _ := replica.WALStatus()
	if rst.Seq != c.PrimarySeq {
		t.Fatalf("replica at %d after pull, primary reported %d", rst.Seq, c.PrimarySeq)
	}
	// The connection survives for further pulls (caught up now).
	c2, err := PullWAL(client, rst.Seq)
	if err != nil || len(c2.Records) != 0 {
		t.Fatalf("caught-up pull: %+v err %v", c2, err)
	}
}

func TestWALPullRefusedWithoutOptIn(t *testing.T) {
	primary, _, _ := replPair(t)
	srv := primary.NewNetServer(ServeConfig{})
	client := dialNetServer(t, srv)
	_, err := PullWAL(client, 0)
	if err == nil || !strings.Contains(err.Error(), "replication is disabled") {
		t.Fatalf("pull without AllowReplication: %v", err)
	}
}

func TestReplicaStatusInStats(t *testing.T) {
	_, replica, _ := replPair(t)
	srv := replica.NewNetServer(ServeConfig{})
	rst, _ := replica.WALStatus()
	srv.SetReplicaStatus(func() (uint64, bool) { return rst.Seq + 3, true })

	client := dialNetServer(t, srv)
	st, err := ServerStats(client)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplPrimarySeq != rst.Seq+3 {
		t.Fatalf("ReplPrimarySeq %d, want %d", st.ReplPrimarySeq, rst.Seq+3)
	}
	if st.ReplLag != 3 {
		t.Fatalf("ReplLag %d, want 3", st.ReplLag)
	}
	if !strings.Contains(string(srv.MetricsText()), "embellish_repl_lag_ops 3\n") {
		t.Fatal("repl_lag_ops missing from metrics text")
	}
}

func TestReplicationGapSurfaces(t *testing.T) {
	primary, replica, _ := replPair(t)
	lemmas := miniLemmas()
	for i := 0; i < 3; i++ {
		id := primary.NextDocID()
		if err := primary.AddDocuments([]Document{{ID: id, Text: storeDocText(id, lemmas)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint retires the journal prefix; a replica still at 0 can no
	// longer catch up incrementally.
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ := replica.WALStatus()
	_, err := primary.WALRecordsAfter(st.Seq, 0)
	if !errors.Is(err, ErrReplicationGap) {
		t.Fatalf("retired suffix: %v", err)
	}
}

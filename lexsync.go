package embellish

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"embellish/internal/bucket"
	"embellish/internal/wire"
	"embellish/internal/wordnet"
)

// Server-assisted lexicon sync: the protocol requires every client to
// know the engine's bucket organization and synset tables EXACTLY —
// before this surface existed, that meant shipping the engine file out
// of band. SyncLexicon lets a remote client of a loaded engine fetch
// the client-side world (organization, lexicon, analyzer settings, key
// parameters) over the wire, so a machine that has never seen the
// engine file can embellish queries that are byte-compatible with
// in-process clients. The payload is public knowledge in the paper's
// threat model (Section 3: the adversary knows the organization); the
// gate (ServeConfig.AllowLexiconSync) exists for operational exposure
// control, not secrecy.

// ErrStaleLexicon reports that the server's lexicon version differs
// from the one this client synced: its bucket organization is out of
// date, and queries embellished with it would be malformed. Re-sync
// with SyncLexicon.
var ErrStaleLexicon = errors.New("embellish: " + wire.StaleLexiconRefusal)

// lexsyncState caches the engine's serialized sync payload: the
// organization and lexicon are pinned at construction, so the bytes
// are computed once and reused for every TypeLexiconSync request.
type lexsyncState struct {
	once    sync.Once
	payload wire.Lexicon
	err     error
}

// lexiconPayload returns the engine's (cached) full sync payload.
func (e *Engine) lexiconPayload() (wire.Lexicon, error) {
	e.lexsync.once.Do(func() {
		var org, lex bytes.Buffer
		if _, err := e.org.WriteTo(&org); err != nil {
			e.lexsync.err = fmt.Errorf("embellish: serializing organization: %w", err)
			return
		}
		if _, err := e.lex.db.WriteTo(&lex); err != nil {
			e.lexsync.err = fmt.Errorf("embellish: serializing lexicon: %w", err)
			return
		}
		l := wire.Lexicon{
			ScoreSpace: e.opts.ScoreSpace,
			KeyBits:    e.opts.KeyBits,
			Stopwords:  e.opts.Stopwords,
			Org:        org.Bytes(),
			Lex:        lex.Bytes(),
		}
		// The version is a content hash over everything the payload
		// carries, so two engines built from the same lexicon and corpus
		// agree and any drift (re-bucketing, different options) is loud.
		h := fnv.New64a()
		h.Write(l.Org)
		h.Write(l.Lex)
		fmt.Fprintf(h, "|%d|%d|%t", l.ScoreSpace, l.KeyBits, l.Stopwords)
		l.Version = h.Sum64()
		if l.Version == 0 {
			l.Version = 1 // 0 means "full fetch" on the wire
		}
		e.lexsync.payload = l
	})
	return e.lexsync.payload, e.lexsync.err
}

// LexiconVersion returns the engine's lexicon-sync version: a content
// hash over the bucket organization, the synset tables, and the
// client-relevant options. Clients compare it via CheckLexicon.
func (e *Engine) LexiconVersion() (uint64, error) {
	l, err := e.lexiconPayload()
	if err != nil {
		return 0, err
	}
	return l.Version, nil
}

// RemoteWorld is a client world fetched from a server with
// SyncLexicon: enough state to mint remote-only Clients that embellish
// exactly like the serving engine's own.
type RemoteWorld struct {
	world   *clientWorld
	version uint64
}

// Version is the server's lexicon version at sync time; pass it to
// CheckLexicon to detect drift before reusing a cached world.
func (rw *RemoteWorld) Version() uint64 { return rw.version }

// NumSearchableTerms reports the size of the synced searchable
// dictionary (the organization's term count).
func (rw *RemoteWorld) NumSearchableTerms() int { return rw.world.org.Terms() }

// NumBuckets reports the synced organization's bucket count.
func (rw *RemoteWorld) NumBuckets() int { return rw.world.org.NumBuckets() }

// SearchableLemmas returns the lemmas of the synced searchable
// dictionary, like Engine.SearchableLemmas — the terms a remote query
// may contain and still be both protected and matched. The slice is
// freshly allocated.
func (rw *RemoteWorld) SearchableLemmas() []string {
	var out []string
	for b := 0; b < rw.world.org.NumBuckets(); b++ {
		for _, t := range rw.world.org.Bucket(b) {
			out = append(out, rw.world.lex.db.Lemma(t))
		}
	}
	return out
}

// NewClient generates a fresh key pair bound to the synced world. The
// client has no local engine: Search/Process are unavailable
// (ErrRemoteOnly), the Remote methods all work. randSource supplies
// cryptographic randomness; nil selects crypto/rand.
func (rw *RemoteWorld) NewClient(randSource io.Reader) (*Client, error) {
	return newWorldClient(rw.world, randSource)
}

// SyncLexicon fetches the server's embellishment world over an open
// connection: bucket organization, synset tables, analyzer settings
// and key parameters. The server must run with
// ServeConfig.AllowLexiconSync; the refusal leaves the connection
// reusable, like the other admin gates. The returned world is
// immutable and safe to share across goroutines (each NewClient mints
// an independent session).
func SyncLexicon(conn io.ReadWriter) (*RemoteWorld, error) {
	if err := wire.WriteLexiconSync(conn, 0); err != nil {
		return nil, fmt.Errorf("embellish: sending lexicon sync: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading lexicon: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, remoteError(body)
	case wire.TypeLexicon:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	l, err := wire.DecodeLexicon(body)
	if err != nil {
		return nil, err
	}
	if l.Current {
		// Version 0 asked for the full tables; "current" answers only
		// non-zero version probes.
		return nil, errors.New("embellish: server answered a full sync with a version probe response")
	}
	w, err := buildWorld(l)
	if err != nil {
		return nil, err
	}
	return &RemoteWorld{world: w, version: l.Version}, nil
}

// CheckLexicon asks the server whether the given synced version is
// still current. nil means current; ErrStaleLexicon (possibly wrapped)
// means the server's tables changed and the world must be re-synced;
// other errors are transport or gate failures. version must be
// non-zero (zero is the full-fetch request).
func CheckLexicon(conn io.ReadWriter, version uint64) error {
	if version == 0 {
		return errors.New("embellish: version 0 is the full-fetch request; pass a synced version")
	}
	if err := wire.WriteLexiconSync(conn, version); err != nil {
		return fmt.Errorf("embellish: sending lexicon probe: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("embellish: reading lexicon probe response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return remoteError(body)
	case wire.TypeLexicon:
	default:
		return fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	l, err := wire.DecodeLexicon(body)
	if err != nil {
		return err
	}
	if !l.Current || l.Version != version {
		return fmt.Errorf("embellish: server answered version probe with version %d payload (probed %d)", l.Version, version)
	}
	return nil
}

// buildWorld reconstructs a clientWorld from a decoded sync payload.
// The two blobs re-validate their own grammars (crc, shape) in the
// persistence codecs; this layer checks cross-consistency — every
// organization term must exist in the lexicon — so a hostile or
// corrupt payload cannot produce a client that embellishes terms the
// lexicon cannot name.
func buildWorld(l wire.Lexicon) (*clientWorld, error) {
	db, err := wordnet.ReadDatabase(bytes.NewReader(l.Lex))
	if err != nil {
		return nil, fmt.Errorf("embellish: lexicon payload: %w", err)
	}
	org, err := bucket.ReadOrganization(bytes.NewReader(l.Org))
	if err != nil {
		return nil, fmt.Errorf("embellish: organization payload: %w", err)
	}
	nt := wordnet.TermID(db.NumTerms())
	for b := 0; b < org.NumBuckets(); b++ {
		for _, t := range org.Bucket(b) {
			if t >= nt {
				return nil, fmt.Errorf("embellish: organization references term %d outside the %d-term lexicon", t, nt)
			}
		}
	}
	if err := (Options{
		BucketSize:  2, // not carried by the payload; satisfy validate
		KeyBits:     l.KeyBits,
		ScoreSpace:  l.ScoreSpace,
		QuantLevels: 255,
	}).validate(); err != nil {
		return nil, fmt.Errorf("embellish: sync payload options: %w", err)
	}
	return &clientWorld{
		lex:        &Lexicon{db: db},
		analyzer:   buildAnalyzer(db, l.Stopwords),
		org:        org,
		keyBits:    l.KeyBits,
		scoreSpace: l.ScoreSpace,
		fetchBits:  l.KeyBits,
	}, nil
}

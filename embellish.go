package embellish

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"embellish/internal/benaloh"
	"embellish/internal/bucket"
	"embellish/internal/core"
	"embellish/internal/docstore"
	"embellish/internal/index"
	"embellish/internal/pir"
	"embellish/internal/sequence"
	"embellish/internal/textproc"
	"embellish/internal/wal"
	"embellish/internal/wire"
	"embellish/internal/wordnet"
)

// Document is one indexable text.
type Document struct {
	// ID is the document's corpus id. NewEngine accepts any ids, but
	// storing engines (Options.StoreDocuments) and AddDocuments require
	// the dense sequence 0,1,2,... that NextDocID continues.
	ID int
	// Text is the raw document body: what gets analyzed, indexed and —
	// on storing engines — kept for private retrieval.
	Text string
}

// Engine is the search-engine side of the system: the segmented live
// index, the bucket organization (public knowledge), and the Algorithm
// 4 score accumulator. An Engine is safe for concurrent use: searches
// evaluate against an atomically loaded index snapshot and are never
// blocked, while AddDocuments / DeleteDocuments serialize on a write
// lock and publish new snapshots. The searchable dictionary and the
// bucket organization are pinned at construction — the protocol
// requires every client to know them exactly, so extending them means
// rebuilding and redistributing the engine file.
type Engine struct {
	opts       Options
	lex        *Lexicon
	analyzer   *textproc.Analyzer
	live       *index.Live
	org        *bucket.Organization
	server     *core.Server
	searchable []wordnet.TermID
	// store holds the document bytes laid out into PIR blocks for
	// private retrieval (Options.StoreDocuments); nil when the engine
	// only ranks.
	store *docstore.Store
	// updateMu serializes the write path (AddDocuments, DeleteDocuments)
	// so document-id assignment stays dense; readers never take it.
	updateMu sync.Mutex
	// wal is the crash-safe journaling state (Options.Durability /
	// EnableDurability); nil on in-memory engines. Its non-atomic
	// fields are guarded by updateMu.
	wal *walState
	// pirWorkers is the live PIR fetch-serving plan (the
	// Options.PIRWorkers encoding), held in an atomic so
	// ConfigurePIRWorkers can retune a serving engine without racing
	// the fetch paths that read it per answer.
	pirWorkers atomic.Int64
	// pirAmortize is the live multi-query amortization switch (the
	// Options.PIRBatchAmortize encoding: 0 default-on, -1 off, 1 on),
	// in an atomic for the same reason. The zero value is the default,
	// so loaded engines amortize without any explicit store.
	pirAmortize atomic.Int64
	// pirRecursive is the live recursive-serving switch (the
	// Options.PIRRecursive encoding: 0 default-on, -1 off, 1 on), in an
	// atomic for the same reason. The zero value is the default, so
	// loaded engines serve recursive frames without any explicit store.
	pirRecursive atomic.Int64
	// lexsync caches the serialized lexicon-sync payload (organization
	// and synset tables are pinned at construction, so it never
	// changes); see lexsync.go.
	lexsync lexsyncState
}

// NewEngine indexes the documents and builds the bucket organization
// over the searchable dictionary (lexicon terms that occur in the
// corpus), following the Section 5.2 workflow: analyze, index, intersect
// with the lexicon, sequence with Algorithm 1, bucket with Algorithm 2.
func NewEngine(lex *Lexicon, docs []Document, opts Options) (*Engine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if lex == nil {
		return nil, errors.New("embellish: nil lexicon")
	}
	if len(docs) == 0 {
		return nil, errors.New("embellish: no documents")
	}
	lex.freeze()

	e := &Engine{opts: opts, lex: lex}
	e.analyzer = buildAnalyzer(lex.db, opts.Stopwords)

	b := index.NewBuilder()
	b.QuantLevels = int32(opts.QuantLevels)
	if opts.Scoring == BM25 {
		b.Scoring = index.ScoringBM25
	}
	if opts.StoreDocuments {
		store, err := docstore.New(opts.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("embellish: %w", err)
		}
		// The store requires the dense-id contract NewEngine already
		// implies (AddDocuments continues the sequence from NumDocs),
		// and the same per-document size cap AddDocuments enforces —
		// the wire params codec rejects larger extents, so an oversized
		// document here would break every remote fetch later.
		texts := make([][]byte, len(docs))
		for i, d := range docs {
			if d.ID != i {
				return nil, fmt.Errorf("embellish: StoreDocuments requires dense document ids: got %d at position %d", d.ID, i)
			}
			if len(d.Text) > maxStoredDocBytes {
				return nil, fmt.Errorf("embellish: document %d text of %d bytes exceeds the storable limit %d", d.ID, len(d.Text), maxStoredDocBytes)
			}
			texts[i] = []byte(d.Text)
		}
		if err := store.AddBatch(0, texts); err != nil {
			return nil, fmt.Errorf("embellish: %w", err)
		}
		e.store = store
	}
	for _, d := range docs {
		b.Add(index.DocID(d.ID), e.analyzer.Analyze(d.Text))
	}
	baseIx := b.Build()
	e.live = index.NewLive(baseIx)
	e.live.SetMaxSegments(opts.maxSegments())

	// Searchable dictionary = lexicon ∩ index vocabulary, in Algorithm 1
	// sequence order.
	for _, t := range sequence.Run(lex.db) {
		if _, ok := baseIx.LookupTerm(lex.db.Lemma(t)); ok {
			e.searchable = append(e.searchable, t)
		}
	}
	if len(e.searchable) < 2*opts.BucketSize {
		return nil, fmt.Errorf("embellish: only %d searchable terms for BucketSize %d; index more documents or shrink buckets",
			len(e.searchable), opts.BucketSize)
	}

	segSz := opts.SegmentSize
	if segSz <= 0 {
		segSz = len(e.searchable) / opts.BucketSize
	}
	org, err := bucket.Generate(e.searchable, lex.db.Specificity, opts.BucketSize, segSz)
	if err != nil {
		return nil, fmt.Errorf("embellish: bucket formation: %w", err)
	}
	e.org = org
	e.server = core.NewLiveServer(e.live, org, lex.db)
	e.pirWorkers.Store(int64(opts.PIRWorkers))
	e.pirAmortize.Store(int64(opts.PIRBatchAmortize))
	e.pirRecursive.Store(int64(opts.PIRRecursive))
	e.applyExecution()
	if opts.Durability.Dir != "" {
		// The freshly built corpus becomes checkpoint 0; every later
		// update is journaled. An engine that fails here is unusable by
		// contract — the caller asked for durability.
		if err := e.EnableDurability(opts.Durability); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// buildAnalyzer constructs the query/document analyzer for a lexicon:
// stopword removal per the paper (when enabled), no stemming,
// multi-word lemma fusion so dictionary entries like 'abu sayyaf'
// survive tokenization. Shared between NewEngine and remotely synced
// client worlds — both sides must analyze identically or genuine term
// sets diverge.
func buildAnalyzer(db *wordnet.Database, stopwords bool) *textproc.Analyzer {
	a := textproc.NewAnalyzer()
	if !stopwords {
		a.Stopwords = nil
	}
	lemmas := make([]string, 0, db.NumTerms())
	for _, t := range db.AllTerms() {
		lemmas = append(lemmas, db.Lemma(t))
	}
	a.Matcher = textproc.NewDictionaryMatcher(lemmas)
	return a
}

// clientWorld is the client-side slice of an engine: everything needed
// to analyze, embellish and key queries, WITHOUT the index or stores.
// An in-process client borrows its engine's world; a remote client
// builds one from a TypeLexicon sync payload (see SyncLexicon) and has
// no engine at all.
type clientWorld struct {
	lex      *Lexicon
	analyzer *textproc.Analyzer
	org      *bucket.Organization
	// keyBits/scoreSpace pin Benaloh key generation to the engine's
	// accumulator; fetchBits is the default PIR modulus size.
	keyBits    int
	scoreSpace int
	fetchBits  int
}

// clientView assembles the engine's client world.
func (e *Engine) clientView() *clientWorld {
	return &clientWorld{
		lex:        e.lex,
		analyzer:   e.analyzer,
		org:        e.org,
		keyBits:    e.opts.KeyBits,
		scoreSpace: e.opts.ScoreSpace,
		fetchBits:  e.opts.retrievalKeyBits(),
	}
}

// ErrRemoteOnly reports a local-execution method called on a client
// built from a lexicon sync instead of an engine — such clients can
// only talk to servers (SearchRemote, FetchDocumentsRemote, ...).
var ErrRemoteOnly = errors.New("embellish: client has no local engine (built from a lexicon sync); use the Remote methods")

// NumDocs reports the number of live (indexed and not deleted)
// documents.
func (e *Engine) NumDocs() int { return e.live.Snapshot().LiveDocs() }

// NumSegments reports the current segment count of the live index.
func (e *Engine) NumSegments() int { return e.live.NumSegments() }

// NextDocID returns the id AddDocuments will assign to the next
// document. Ids are dense over everything ever added; deleted ids are
// never reused, so after deletions NextDocID exceeds NumDocs.
func (e *Engine) NextDocID() int { return int(e.live.Snapshot().NextDoc) }

// NumSearchableTerms reports the size of the searchable dictionary.
func (e *Engine) NumSearchableTerms() int { return len(e.searchable) }

// NumBuckets reports the number of decoy buckets.
func (e *Engine) NumBuckets() int { return e.org.NumBuckets() }

// SearchableLemmas returns the lemmas of the searchable dictionary —
// the terms a query may contain and still be both protected and
// matched against the corpus. The slice is freshly allocated.
func (e *Engine) SearchableLemmas() []string {
	out := make([]string, len(e.searchable))
	for i, t := range e.searchable {
		out[i] = e.lex.db.Lemma(t)
	}
	return out
}

// Bucket returns the lemmas co-bucketed with the given term — the decoys
// that accompany it in every embellished query — or false when the term
// is not in the searchable dictionary. Inspecting buckets is how
// deployments finetune the organization for sensitive applications
// (Section 3's closing remark).
func (e *Engine) Bucket(lemma string) ([]string, bool) {
	t, ok := e.lex.db.Lookup(lemma)
	if !ok {
		return nil, false
	}
	b, ok := e.org.BucketOf(t)
	if !ok {
		return nil, false
	}
	terms := e.org.Bucket(b)
	out := make([]string, len(terms))
	for i, tm := range terms {
		out[i] = e.lex.db.Lemma(tm)
	}
	return out, true
}

// Query is an embellished query ready for Engine.Process. The engine
// sees only the term list and the attached ciphertext flags.
type Query struct {
	inner *core.Query
	// termNames is filled at embellishment time so examples can print
	// exactly what the adversary observes.
	termNames []string
	// Skipped lists query words that are not in the searchable
	// dictionary and therefore could not be protected or searched.
	Skipped []string
}

// Terms returns the embellished term list — genuine terms and decoys,
// randomly permuted — exactly what the engine observes.
func (q *Query) Terms() []string { return q.termNames }

// Bytes reports the network size of the query.
func (q *Query) Bytes() int { return q.inner.Bytes() }

// WireFrame returns the query as one encoded wire frame — the exact
// bytes Client.SearchRemote writes. Embellishment (the client-side
// crypto) happens once; the frame is then reusable across connections
// and requests, which is what an open-loop load generator needs to
// keep client cost out of the measured server latency.
func (q *Query) WireFrame() ([]byte, error) {
	var buf bytes.Buffer
	if err := wire.WriteQuery(&buf, q.inner); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Response carries encrypted candidate scores back to the client.
type Response struct {
	inner *core.Response
	// Stats describes the server-side work for this query.
	Stats ProcessStats
}

// Bytes reports the network size of the response.
func (r *Response) Bytes() int { return r.inner.Bytes() }

// ProcessStats summarizes the cost of one Engine.Process call.
type ProcessStats struct {
	// PostingsScanned is the number of inverted-list entries touched
	// (genuine and decoy terms alike).
	PostingsScanned int
	// BucketsFetched is the number of distinct buckets read; with the
	// Section 4 layout, each costs one disk seek.
	BucketsFetched int
	// Candidates is the size of the returned candidate set R.
	Candidates int
	// TombstonesSkipped is the number of scanned postings that belonged
	// to deleted documents; skipping them costs no homomorphic work.
	TombstonesSkipped int
	// SimulatedIOms is the disk time under the library's analytic disk
	// model (1 KB blocks; see internal/simio).
	SimulatedIOms float64
}

// processCore routes one embellished core query through the configured
// execution pipeline: the sharded worker pool when Shards is set, the
// legacy term-striped plan when only Parallelism is, and the paper's
// sequential Algorithm 4 otherwise. Parallelism 0 is honored as
// single-threaded execution in every plan — on a sharded server one
// worker walks the shards serially. Every plan produces ciphertexts
// that decrypt to identical scores.
func (e *Engine) processCore(q *core.Query) (*core.Response, core.Stats, error) {
	return e.processCoreCtx(context.Background(), q)
}

// processCoreCtx is processCore under a context: every execution plan
// checks ctx inside its posting walk and stops mid-scan on
// cancellation, returning ctx.Err() with the partial-work stats.
func (e *Engine) processCoreCtx(ctx context.Context, q *core.Query) (*core.Response, core.Stats, error) {
	workers := 0 // GOMAXPROCS
	switch {
	case e.opts.Parallelism > 0:
		workers = e.opts.Parallelism
	case e.opts.Parallelism == 0:
		workers = 1
	}
	switch {
	case e.server.NumShards() > 0:
		return e.server.ProcessParallelCtx(ctx, q, workers)
	case e.opts.Parallelism == 0:
		return e.server.ProcessCtx(ctx, q)
	default:
		return e.server.ProcessParallelCtx(ctx, q, workers)
	}
}

// ConfigureExecution adjusts the runtime execution knobs — they tune
// how scores are computed, never what they decrypt to, and are not part
// of the persisted engine file (load an engine, then configure it for
// the deployment's hardware). The arguments follow the Options fields
// of the same names; see Options for the encodings of 0 and -1.
func (e *Engine) ConfigureExecution(shards, precomputeWindow, parallelism int) error {
	opts := e.opts
	opts.Shards = shards
	opts.PrecomputeWindow = precomputeWindow
	opts.Parallelism = parallelism
	if err := opts.validate(); err != nil {
		return err
	}
	e.opts = opts
	e.applyExecution()
	return nil
}

// ConfigurePIRWorkers adjusts the PIR fetch-serving plan — the
// Options.PIRWorkers knob, with the same encoding (0 the sequential
// reference path, -1 GOMAXPROCS workers, >= 1 pinned). Answers are
// byte-identical in every plan. Like the other execution knobs it is
// not persisted (loaded engines start sequential); unlike them it is
// safe to call on a LIVE engine — the plan lives in its own atomic
// (e.opts is deliberately NOT touched, so this never races readers of
// the options struct), in-flight fetches finish on the old plan and
// later ones pick up the new one.
func (e *Engine) ConfigurePIRWorkers(n int) error {
	if err := validatePIRWorkers(n); err != nil {
		return err
	}
	e.pirWorkers.Store(int64(n))
	return nil
}

// livePIRWorkers reads the current fetch-serving plan; safe from any
// goroutine.
func (e *Engine) livePIRWorkers() int { return int(e.pirWorkers.Load()) }

// ConfigurePIRBatchAmortize flips the multi-query amortization escape
// hatch — the Options.PIRBatchAmortize knob, same encoding (0 default
// = amortize, -1 off, 1 on) — on a live engine. Like PIRWorkers it
// lives in its own atomic, is not persisted, and only changes HOW
// batches are served: answers are byte-identical either way.
func (e *Engine) ConfigurePIRBatchAmortize(n int) error {
	if err := validatePIRBatchAmortize(n); err != nil {
		return err
	}
	e.pirAmortize.Store(int64(n))
	return nil
}

// livePIRBatchAmortize reports whether batched block queries should be
// served through the one-pass multi-query scan; safe from any
// goroutine.
func (e *Engine) livePIRBatchAmortize() bool { return e.pirAmortize.Load() >= 0 }

// ConfigurePIRRecursive flips the recursive (two-level) serving switch
// — the Options.PIRRecursive knob, same encoding (0 default = serve,
// -1 refuse, 1 serve) — on a live engine. Like the other PIR knobs it
// lives in its own atomic, is not persisted, and never changes decoded
// documents: recursive answers decrypt to the same bytes as flat ones,
// the knob only controls whether the server accepts the recursive
// frame (and whether local fetches may use the recursive layout).
func (e *Engine) ConfigurePIRRecursive(n int) error {
	if err := validatePIRRecursive(n); err != nil {
		return err
	}
	e.pirRecursive.Store(int64(n))
	return nil
}

// livePIRRecursive reports whether recursive block queries should be
// served; safe from any goroutine.
func (e *Engine) livePIRRecursive() bool { return e.pirRecursive.Load() >= 0 }

// answerPIR serves one PIR block query from a pinned store snapshot
// through the plan the workers knob selects: the sequential reference
// scan at 0, the windowed/parallel pir.ProcessColumnsExec otherwise
// (-1 = GOMAXPROCS). Every plan returns byte-identical gammas.
func answerPIR(snap *docstore.Snapshot, q *pir.Query, workers int) (*pir.Answer, pir.Stats, error) {
	return answerPIRCtx(context.Background(), snap, q, workers)
}

// answerPIRCtx is answerPIR under a context: a cancelled block scan
// stops within a bounded slice of work in every plan and returns
// ctx.Err(). The Stats count the multiplications actually performed —
// partial on cancellation — so serving layers can meter work.
func answerPIRCtx(ctx context.Context, snap *docstore.Snapshot, q *pir.Query, workers int) (*pir.Answer, pir.Stats, error) {
	switch {
	case workers == 0:
		return snap.AnswerCtx(ctx, q)
	case workers < 0:
		return snap.AnswerExecCtx(ctx, q, pir.Exec{Workers: runtime.GOMAXPROCS(0)})
	default:
		return snap.AnswerExecCtx(ctx, q, pir.Exec{Workers: workers})
	}
}

// answerPIRMultiCtx serves a whole batch of equal-width, same-modulus
// PIR queries in ONE pass over the snapshot (docstore.AnswerMulti):
// the block bytes are read and transposed once for the batch, and the
// row loops run on the Montgomery kernel. Answers are byte-identical
// to per-query answerPIRCtx runs, in batch order, with per-query
// Stats. The workers encoding matches answerPIRCtx; the sequential
// reference plan (workers == 0) still shares the one-pass scan but on
// a single goroutine.
func answerPIRMultiCtx(ctx context.Context, snap *docstore.Snapshot, qs []*pir.Query, workers int) ([]*pir.Answer, []pir.Stats, error) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return snap.AnswerMultiExecCtx(ctx, qs, pir.Exec{Workers: workers})
}

// answerPIRRecursiveCtx serves a batch of recursive block queries in
// one level-1 pass over the snapshot. The workers encoding matches
// answerPIRCtx: 0 serves on a single goroutine (the recursive path has
// no separate sequential reference plan — its reference is decoding to
// the same bytes as the flat plans), -1 GOMAXPROCS, >= 1 pinned.
func answerPIRRecursiveCtx(ctx context.Context, snap *docstore.Snapshot, qs []*pir.RecursiveQuery, workers int) ([]*pir.Answer, []pir.Stats, error) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return snap.AnswerRecursiveMultiExecCtx(ctx, qs, pir.Exec{Workers: workers})
}

// ConfigureMergePolicy adjusts the live-index segment bound — the
// Options.MaxSegments knob, with the same encoding (0 default, -1
// disable automatic merging, >= 1 pinned) — at runtime. Like the
// execution knobs it is not part of the persisted engine file, so
// loaded engines start at the default; deployments reapply their
// policy after LoadEngine.
func (e *Engine) ConfigureMergePolicy(maxSegments int) error {
	// updateMu orders the opts write against the write path, which reads
	// opts while building segments.
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	opts := e.opts
	opts.MaxSegments = maxSegments
	if err := opts.validate(); err != nil {
		return err
	}
	e.opts = opts
	e.live.SetMaxSegments(opts.maxSegments())
	return nil
}

// applyExecution pushes the execution options into the core server.
func (e *Engine) applyExecution() {
	e.server.SetSharding(e.opts.Shards)
	e.server.SetPrecompute(e.opts.precomputeWindow())
}

// CancelledError reports a query stopped mid-scan by context
// cancellation or deadline expiry, carrying the partial-work
// accounting of the cycles the abandoned query burned before it
// stopped. It wraps the context error, so
// errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) both see through it.
type CancelledError struct {
	// Stats accounts the work performed before the stop: postings
	// scanned, buckets charged, tombstones skipped. Candidates is
	// always zero — partial candidate sets are discarded, never
	// returned.
	Stats ProcessStats
	// Err is the underlying context error (context.Canceled or
	// context.DeadlineExceeded).
	Err error
}

func (c *CancelledError) Error() string {
	return fmt.Sprintf("embellish: query cancelled after %d postings: %v", c.Stats.PostingsScanned, c.Err)
}

// Unwrap exposes the context error to errors.Is / errors.As.
func (c *CancelledError) Unwrap() error { return c.Err }

// Process executes Algorithm 4: accumulate each candidate document's
// encrypted relevance score over every term of the embellished query.
// The engine cannot distinguish genuine terms from decoys; decoy flags
// encrypt zero, so they perturb only ciphertexts, never scores.
func (e *Engine) Process(q *Query) (*Response, error) {
	return e.ProcessContext(context.Background(), q)
}

// ProcessContext is Process under a context: the posting walk checks
// ctx periodically (every execution plan, including the sharded and
// term-striped worker pools) and stops mid-scan when ctx is cancelled
// or its deadline expires. A cancelled query returns a *CancelledError
// wrapping ctx.Err() — errors.Is(err, context.DeadlineExceeded) works
// — whose Stats field accounts the partial work performed, and leaves
// the engine fully serviceable: subsequent queries are unaffected.
func (e *Engine) ProcessContext(ctx context.Context, q *Query) (*Response, error) {
	if q == nil || q.inner == nil {
		return nil, errors.New("embellish: nil query")
	}
	resp, st, err := e.processCoreCtx(ctx, q.inner)
	if err != nil {
		// Sentinel check rather than comparing against ctx.Err(): a
		// scan that stopped on its wall-clock deadline check can
		// return DeadlineExceeded before the context's timer fires.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, &CancelledError{Stats: e.processStats(st), Err: err}
		}
		return nil, err
	}
	return &Response{inner: resp, Stats: e.processStats(st)}, nil
}

// processStats maps core accounting onto the public ProcessStats.
func (e *Engine) processStats(st core.Stats) ProcessStats {
	return ProcessStats{
		PostingsScanned:   st.Postings,
		BucketsFetched:    st.IO.Seeks,
		Candidates:        st.Candidates,
		TombstonesSkipped: st.Tombstoned,
		SimulatedIOms:     st.IOms(e.server.Disk),
	}
}

// AddDocuments indexes additional documents online. The documents
// become a new immutable segment quantized against the scale pinned at
// engine creation, so their homomorphic exponents E(u)^p stay
// comparable with every existing segment and Claim 1 keeps holding.
// Document ids must continue the engine's dense id sequence, i.e.
// docs[i].ID == NextDocID()+i. Concurrent searches are never blocked;
// they keep evaluating the snapshot they loaded and observe the new
// documents on their next query.
//
// New vocabulary is indexed and reachable through PlaintextSearch, but
// the searchable dictionary and bucket organization are pinned at
// engine creation: terms outside them cannot be privately queried
// without rebuilding the engine and redistributing its file.
//
// Like Lucene segments, each batch computes its impacts from its OWN
// corpus statistics (N, f_t, average length), so a tiny batch weighs
// its terms less sharply than the base segment does; Claim 1 is
// unaffected — private and plaintext read the same stored impacts —
// but rankings can differ from a from-scratch rebuild of the same
// corpus. Prefer adding in meaningful batches, and rebuild when
// statistical freshness matters more than availability.
func (e *Engine) AddDocuments(docs []Document) error {
	return e.addDocuments(docs, true)
}

// addDocuments is AddDocuments with the journaling switch: the public
// path journals, write-ahead-log replay (which re-applies records
// already journaled) does not.
func (e *Engine) addDocuments(docs []Document, journal bool) error {
	if len(docs) == 0 {
		return errors.New("embellish: no documents to add")
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	base := int(e.live.Snapshot().NextDoc)
	for i, d := range docs {
		if d.ID != base+i {
			return fmt.Errorf("embellish: document ids must continue the dense sequence: got %d at position %d, want %d (see NextDocID)",
				d.ID, i, base+i)
		}
		// Validate EVERYTHING before the first store/index mutation: a
		// mid-batch failure would leave the doc store permanently ahead
		// of the index, bricking every later update.
		if e.store != nil && len(d.Text) > maxStoredDocBytes {
			return fmt.Errorf("embellish: document %d text of %d bytes exceeds the storable limit %d", d.ID, len(d.Text), maxStoredDocBytes)
		}
	}
	b := index.NewBuilder()
	b.QuantLevels = int32(e.opts.QuantLevels)
	b.Scale = e.live.Scale()
	if e.opts.Scoring == BM25 {
		b.Scoring = index.ScoringBM25
	}
	for i, d := range docs {
		b.Add(index.DocID(i), e.analyzer.Analyze(d.Text))
	}
	// Build the segment FIRST and pre-check Append's preconditions, so
	// nothing below can fail after the store mutation: a store left
	// ahead of the index would brick every later update.
	local := b.Build()
	if local.QuantLevels != e.live.QuantLevels() || local.Scale() != e.live.Scale() {
		return fmt.Errorf("embellish: batch quantization (scale %g, %d levels) does not match the engine's pinned (%g, %d)",
			local.Scale(), local.QuantLevels, e.live.Scale(), e.live.QuantLevels())
	}
	// Journal AFTER every validation (a journaled operation must be
	// appliable on replay) and BEFORE any index/store mutation (an
	// applied operation must be recoverable). Still under updateMu, so
	// journal order is apply order.
	// One byte copy serves both consumers: the journal frames the
	// slices into its record (without retaining them) and the store
	// copies them into fresh block arrays.
	var texts [][]byte
	if (journal && e.wal != nil) || e.store != nil {
		texts = make([][]byte, len(docs))
		for i, d := range docs {
			texts[i] = []byte(d.Text)
		}
	}
	if journal && e.wal != nil {
		rec := &wal.Record{Op: wal.OpAddDocs, Docs: make([]wal.DocText, len(docs))}
		for i, d := range docs {
			rec.Docs[i] = wal.DocText{ID: uint32(d.ID), Text: texts[i]}
		}
		if err := e.journalLocked(rec); err != nil {
			return err
		}
	}
	// Store bytes BEFORE publishing the index segment: a searcher that
	// ranks a new document must already be able to fetch it. Both writes
	// happen under updateMu, so the store's dense-id sequence tracks the
	// index's exactly.
	if e.store != nil {
		if err := e.store.AddBatch(base, texts); err != nil {
			return fmt.Errorf("embellish: document store: %w", err)
		}
	}
	_, err := e.live.Append(local)
	return err
}

// DeleteDocuments removes documents online by tombstoning their ids:
// subsequent searches skip their postings without any homomorphic
// work, and the next merge rewrites the postings away. Every id must be
// live — unknown and already-deleted ids are rejected and the call
// changes nothing. Concurrent searches are never blocked.
func (e *Engine) DeleteDocuments(ids []int) error {
	return e.deleteDocuments(ids, true)
}

// deleteDocuments is DeleteDocuments with the journaling switch (see
// addDocuments).
func (e *Engine) deleteDocuments(ids []int, journal bool) error {
	if len(ids) == 0 {
		return errors.New("embellish: no documents to delete")
	}
	ds := make([]index.DocID, len(ids))
	for i, id := range ids {
		// Bound BEFORE the int32 conversion: a wrapped id would silently
		// tombstone some other document.
		if id < 0 || id > 1<<31-1 {
			return fmt.Errorf("embellish: document id %d out of range", id)
		}
		ds[i] = index.DocID(id)
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	if journal && e.wal != nil {
		// Dry-run the tombstone update first: a journal record must
		// never encode an operation the index would reject on replay.
		if err := e.live.Snapshot().ValidateDelete(ds); err != nil {
			return fmt.Errorf("embellish: %w", err)
		}
		rec := &wal.Record{Op: wal.OpDeleteDocs, IDs: make([]uint32, len(ids))}
		for i, id := range ids {
			rec.IDs[i] = uint32(id)
		}
		if err := e.journalLocked(rec); err != nil {
			return err
		}
	}
	if err := e.live.Delete(ds); err != nil {
		return fmt.Errorf("embellish: %w", err)
	}
	// Tombstone the stored bytes AFTER the index: the document stops
	// being ranked first, then stops being fetchable. The ids were
	// validated live by the index delete, and both stores share one
	// update history under updateMu, so this cannot fail.
	if e.store != nil {
		if err := e.store.DeleteBatch(ids); err != nil {
			return fmt.Errorf("embellish: document store: %w", err)
		}
	}
	return nil
}

// Compact synchronously folds the live index into a single segment,
// rewriting every tombstoned posting away. Searches are never blocked.
// The background merge policy (Options.MaxSegments) normally keeps the
// segment set bounded on its own; Compact is for deployments that want
// a deterministic full rewrite, e.g. before Save.
func (e *Engine) Compact() { e.live.Compact() }

// Client is the user side: it owns the Benaloh private key, embellishes
// queries, and decrypts responses. A Client is not safe for concurrent
// use; create one per session.
type Client struct {
	// engine is the in-process engine for local execution; nil on
	// clients built from a lexicon sync (remote-only).
	engine *Engine
	// world is what embellishment actually reads: lexicon, analyzer,
	// organization and key parameters. Never nil.
	world *clientWorld
	inner *core.Client
	// fetchKey is the PIR key for private document fetches, generated
	// lazily on the first FetchDocuments/FetchDocumentsRemote call;
	// fetchBits overrides its size (SetRetrievalKeyBits); fetchDepth is
	// the fetch-pipeline window (SetFetchPipeline; 0 selects
	// DefaultFetchPipeline); fetchRecursive opts this client's fetches
	// into the two-level recursive PIR protocol (SetFetchRecursive).
	fetchKey       *pir.ClientKey
	fetchBits      int
	fetchDepth     int
	fetchRecursive bool
}

// NewClient generates a fresh key pair and returns a client bound to the
// engine's bucket organization. randSource supplies cryptographic
// randomness; nil selects crypto/rand (pass a deterministic reader only
// in tests).
func (e *Engine) NewClient(randSource io.Reader) (*Client, error) {
	c, err := newWorldClient(e.clientView(), randSource)
	if err != nil {
		return nil, err
	}
	c.engine = e
	return c, nil
}

// newWorldClient generates a key pair for a client world — the shared
// constructor behind Engine.NewClient and RemoteWorld.NewClient.
func newWorldClient(w *clientWorld, randSource io.Reader) (*Client, error) {
	key, err := benaloh.GenerateKey(randSource, w.keyBits, benaloh.Pow3(w.scoreSpace))
	if err != nil {
		return nil, fmt.Errorf("embellish: key generation: %w", err)
	}
	c := &Client{world: w, inner: core.NewClient(w.org, key, rand.Int63())}
	c.inner.CryptoRand = randSource
	return c, nil
}

// SetEmbellishSeed re-seeds the permutation source that shuffles
// embellished term lists. Embellishment is deterministic given this
// seed, the query, and the bytes CryptoRand yields — which is how the
// property tests prove a synced remote client produces byte-identical
// wire frames to an engine-bound client.
func (c *Client) SetEmbellishSeed(seed int64) {
	c.inner.Rand = rand.New(rand.NewSource(seed))
}

// Embellish implements Algorithm 3 on a natural-language query: analyze
// it with the engine's pipeline, replace each genuine term with its full
// host bucket, attach encrypted genuineness flags, and permute. Words
// outside the searchable dictionary are reported in Query.Skipped.
func (c *Client) Embellish(query string) (*Query, error) {
	tokens := c.world.analyzer.Analyze(query)
	if len(tokens) == 0 {
		return nil, errors.New("embellish: query has no indexable terms")
	}
	var genuine []wordnet.TermID
	var skipped []string
	for _, tok := range tokens {
		t, ok := c.world.lex.db.Lookup(tok)
		if !ok {
			skipped = append(skipped, tok)
			continue
		}
		genuine = append(genuine, t)
	}
	if len(genuine) == 0 {
		return nil, fmt.Errorf("embellish: no query term is in the searchable dictionary (skipped: %v)", skipped)
	}
	inner, skippedIDs, err := c.inner.Embellish(genuine)
	if err != nil {
		return nil, err
	}
	for _, t := range skippedIDs {
		skipped = append(skipped, c.world.lex.db.Lemma(t))
	}
	q := &Query{inner: inner, Skipped: skipped}
	q.termNames = make([]string, len(inner.Entries))
	for i, e := range inner.Entries {
		q.termNames[i] = c.world.lex.db.Lemma(e.Term)
	}
	return q, nil
}

// Result is one decrypted, ranked result document.
type Result struct {
	// DocID identifies the ranked document; on storing engines it can
	// be fetched privately with Client.FetchDocuments.
	DocID int
	// Score is the quantized relevance score accumulated from the
	// genuine terms only.
	Score int64
}

// Decode implements Algorithm 5: decrypt the candidate scores, rank
// decreasing, and keep the top k (k <= 0 keeps all).
func (c *Client) Decode(resp *Response, k int) ([]Result, error) {
	if resp == nil || resp.inner == nil {
		return nil, errors.New("embellish: nil response")
	}
	ranked, err := c.inner.PostFilter(resp.inner, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ranked))
	for i, r := range ranked {
		out[i] = Result{DocID: int(r.Doc), Score: r.Score}
	}
	return out, nil
}

// Search is the end-to-end convenience: Embellish, Process, Decode.
// Requires an in-process engine; remote-only clients use SearchRemote.
func (c *Client) Search(query string, k int) ([]Result, error) {
	if c.engine == nil {
		return nil, ErrRemoteOnly
	}
	q, err := c.Embellish(query)
	if err != nil {
		return nil, err
	}
	resp, err := c.engine.Process(q)
	if err != nil {
		return nil, err
	}
	return c.Decode(resp, k)
}

// Snapshot pins one state of the live corpus: the segment set and
// tombstones a concurrently updating engine had at the moment of the
// call. A Snapshot stays valid and internally consistent forever — use
// it to compare a search result against the plaintext ranking of the
// exact corpus state the query observed, or to page through results
// while updates continue.
type Snapshot struct {
	e    *Engine
	snap *index.Snapshot
	// store pins the document-store state alongside the index state
	// (nil when the engine stores no documents). Both are captured
	// under the write lock, so they reflect ONE point in the update
	// history: every document the snapshot ranks is readable through
	// Snapshot.Document, and each view stays internally consistent
	// forever.
	store *docstore.Snapshot
}

// Snapshot captures the engine's current live corpus state. On a
// storing engine the call serializes briefly with writers (the index
// and store captures must land between updates, not inside one);
// store-less engines stay lock-free.
func (e *Engine) Snapshot() *Snapshot {
	if e.store == nil {
		return &Snapshot{e: e, snap: e.live.Snapshot()}
	}
	e.updateMu.Lock()
	s := &Snapshot{e: e, snap: e.live.Snapshot(), store: e.store.Snapshot()}
	e.updateMu.Unlock()
	return s
}

// NumDocs reports the snapshot's live document count.
func (s *Snapshot) NumDocs() int { return s.snap.LiveDocs() }

// NumSegments reports the snapshot's segment count.
func (s *Snapshot) NumSegments() int { return len(s.snap.Segs) }

// Version is the snapshot's update-sequence number; every add, delete
// and merge increments it.
func (s *Snapshot) Version() uint64 { return s.snap.Version }

// LiveDocIDs returns the snapshot's live (assigned and not deleted)
// document ids in increasing order. Allocates the full slice; meant
// for audits and tests, not hot paths.
func (s *Snapshot) LiveDocIDs() []int {
	ds := s.snap.LiveDocIDs()
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = int(d)
	}
	return out
}

// PlaintextSearch runs the query against this snapshot WITHOUT any
// privacy protection, returning the quantized-score ranking a
// conventional engine would produce on that corpus state.
func (s *Snapshot) PlaintextSearch(query string, k int) ([]Result, error) {
	tokens := s.e.analyzer.Analyze(query)
	var qt []string
	for _, tok := range tokens {
		if s.snap.HasToken(tok) {
			qt = append(qt, tok)
		}
	}
	if len(qt) == 0 {
		return nil, errors.New("embellish: no query term occurs in the corpus")
	}
	res := s.snap.QuantizedTopK(qt, k)
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{DocID: int(r.Doc), Score: int64(r.Score)}
	}
	return out, nil
}

// PlaintextSearch runs the same query against the engine's CURRENT
// corpus state WITHOUT any privacy protection, returning the
// quantized-score ranking a conventional engine would produce. Provided
// so applications (and the repository's tests) can verify Claim 1:
// private and plaintext rankings are identical. Under concurrent
// updates, capture a Snapshot instead and query both sides against it.
func (e *Engine) PlaintextSearch(query string, k int) ([]Result, error) {
	return e.Snapshot().PlaintextSearch(query, k)
}

package embellish

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"embellish/internal/benaloh"
	"embellish/internal/bucket"
	"embellish/internal/core"
	"embellish/internal/index"
	"embellish/internal/sequence"
	"embellish/internal/textproc"
	"embellish/internal/wordnet"
)

// Document is one indexable text.
type Document struct {
	ID   int
	Text string
}

// Engine is the search-engine side of the system: the inverted index,
// the bucket organization (public knowledge), and the Algorithm 4 score
// accumulator. An Engine is immutable after construction and safe for
// concurrent use.
type Engine struct {
	opts       Options
	lex        *Lexicon
	analyzer   *textproc.Analyzer
	index      *index.Index
	org        *bucket.Organization
	server     *core.Server
	searchable []wordnet.TermID
}

// NewEngine indexes the documents and builds the bucket organization
// over the searchable dictionary (lexicon terms that occur in the
// corpus), following the Section 5.2 workflow: analyze, index, intersect
// with the lexicon, sequence with Algorithm 1, bucket with Algorithm 2.
func NewEngine(lex *Lexicon, docs []Document, opts Options) (*Engine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if lex == nil {
		return nil, errors.New("embellish: nil lexicon")
	}
	if len(docs) == 0 {
		return nil, errors.New("embellish: no documents")
	}
	lex.freeze()

	e := &Engine{opts: opts, lex: lex}

	// Analyzer: stopword removal per the paper, no stemming, multi-word
	// lemma fusion so dictionary entries like 'abu sayyaf' survive
	// tokenization.
	e.analyzer = textproc.NewAnalyzer()
	if !opts.Stopwords {
		e.analyzer.Stopwords = nil
	}
	lemmas := make([]string, 0, lex.db.NumTerms())
	for _, t := range lex.db.AllTerms() {
		lemmas = append(lemmas, lex.db.Lemma(t))
	}
	e.analyzer.Matcher = textproc.NewDictionaryMatcher(lemmas)

	b := index.NewBuilder()
	b.QuantLevels = int32(opts.QuantLevels)
	if opts.Scoring == BM25 {
		b.Scoring = index.ScoringBM25
	}
	for _, d := range docs {
		b.Add(index.DocID(d.ID), e.analyzer.Analyze(d.Text))
	}
	e.index = b.Build()

	// Searchable dictionary = lexicon ∩ index vocabulary, in Algorithm 1
	// sequence order.
	for _, t := range sequence.Run(lex.db) {
		if _, ok := e.index.LookupTerm(lex.db.Lemma(t)); ok {
			e.searchable = append(e.searchable, t)
		}
	}
	if len(e.searchable) < 2*opts.BucketSize {
		return nil, fmt.Errorf("embellish: only %d searchable terms for BucketSize %d; index more documents or shrink buckets",
			len(e.searchable), opts.BucketSize)
	}

	segSz := opts.SegmentSize
	if segSz <= 0 {
		segSz = len(e.searchable) / opts.BucketSize
	}
	org, err := bucket.Generate(e.searchable, lex.db.Specificity, opts.BucketSize, segSz)
	if err != nil {
		return nil, fmt.Errorf("embellish: bucket formation: %w", err)
	}
	e.org = org
	e.server = core.NewServer(e.index, org, lex.db)
	e.applyExecution()
	return e, nil
}

// NumDocs reports the number of indexed documents.
func (e *Engine) NumDocs() int { return e.index.NumDocs }

// NumSearchableTerms reports the size of the searchable dictionary.
func (e *Engine) NumSearchableTerms() int { return len(e.searchable) }

// NumBuckets reports the number of decoy buckets.
func (e *Engine) NumBuckets() int { return e.org.NumBuckets() }

// SearchableLemmas returns the lemmas of the searchable dictionary —
// the terms a query may contain and still be both protected and
// matched against the corpus. The slice is freshly allocated.
func (e *Engine) SearchableLemmas() []string {
	out := make([]string, len(e.searchable))
	for i, t := range e.searchable {
		out[i] = e.lex.db.Lemma(t)
	}
	return out
}

// Bucket returns the lemmas co-bucketed with the given term — the decoys
// that accompany it in every embellished query — or false when the term
// is not in the searchable dictionary. Inspecting buckets is how
// deployments finetune the organization for sensitive applications
// (Section 3's closing remark).
func (e *Engine) Bucket(lemma string) ([]string, bool) {
	t, ok := e.lex.db.Lookup(lemma)
	if !ok {
		return nil, false
	}
	b, ok := e.org.BucketOf(t)
	if !ok {
		return nil, false
	}
	terms := e.org.Bucket(b)
	out := make([]string, len(terms))
	for i, tm := range terms {
		out[i] = e.lex.db.Lemma(tm)
	}
	return out, true
}

// Query is an embellished query ready for Engine.Process. The engine
// sees only the term list and the attached ciphertext flags.
type Query struct {
	inner *core.Query
	// termNames is filled at embellishment time so examples can print
	// exactly what the adversary observes.
	termNames []string
	// Skipped lists query words that are not in the searchable
	// dictionary and therefore could not be protected or searched.
	Skipped []string
}

// Terms returns the embellished term list — genuine terms and decoys,
// randomly permuted — exactly what the engine observes.
func (q *Query) Terms() []string { return q.termNames }

// Bytes reports the network size of the query.
func (q *Query) Bytes() int { return q.inner.Bytes() }

// Response carries encrypted candidate scores back to the client.
type Response struct {
	inner *core.Response
	// Stats describes the server-side work for this query.
	Stats ProcessStats
}

// Bytes reports the network size of the response.
func (r *Response) Bytes() int { return r.inner.Bytes() }

// ProcessStats summarizes the cost of one Engine.Process call.
type ProcessStats struct {
	// PostingsScanned is the number of inverted-list entries touched
	// (genuine and decoy terms alike).
	PostingsScanned int
	// BucketsFetched is the number of distinct buckets read; with the
	// Section 4 layout, each costs one disk seek.
	BucketsFetched int
	// Candidates is the size of the returned candidate set R.
	Candidates int
	// SimulatedIOms is the disk time under the library's analytic disk
	// model (1 KB blocks; see internal/simio).
	SimulatedIOms float64
}

// processCore routes one embellished core query through the configured
// execution pipeline: the sharded worker pool when Shards is set, the
// legacy term-striped plan when only Parallelism is, and the paper's
// sequential Algorithm 4 otherwise. Parallelism 0 is honored as
// single-threaded execution in every plan — on a sharded server one
// worker walks the shards serially. Every plan produces ciphertexts
// that decrypt to identical scores.
func (e *Engine) processCore(q *core.Query) (*core.Response, core.Stats, error) {
	workers := 0 // GOMAXPROCS
	switch {
	case e.opts.Parallelism > 0:
		workers = e.opts.Parallelism
	case e.opts.Parallelism == 0:
		workers = 1
	}
	switch {
	case e.server.NumShards() > 0:
		return e.server.ProcessParallel(q, workers)
	case e.opts.Parallelism == 0:
		return e.server.Process(q)
	default:
		return e.server.ProcessParallel(q, workers)
	}
}

// ConfigureExecution adjusts the runtime execution knobs — they tune
// how scores are computed, never what they decrypt to, and are not part
// of the persisted engine file (load an engine, then configure it for
// the deployment's hardware). The arguments follow the Options fields
// of the same names; see Options for the encodings of 0 and -1.
func (e *Engine) ConfigureExecution(shards, precomputeWindow, parallelism int) error {
	opts := e.opts
	opts.Shards = shards
	opts.PrecomputeWindow = precomputeWindow
	opts.Parallelism = parallelism
	if err := opts.validate(); err != nil {
		return err
	}
	e.opts = opts
	e.applyExecution()
	return nil
}

// applyExecution pushes the execution options into the core server.
func (e *Engine) applyExecution() {
	e.server.SetSharding(e.opts.Shards)
	e.server.SetPrecompute(e.opts.precomputeWindow())
}

// Process executes Algorithm 4: accumulate each candidate document's
// encrypted relevance score over every term of the embellished query.
// The engine cannot distinguish genuine terms from decoys; decoy flags
// encrypt zero, so they perturb only ciphertexts, never scores.
func (e *Engine) Process(q *Query) (*Response, error) {
	if q == nil || q.inner == nil {
		return nil, errors.New("embellish: nil query")
	}
	resp, st, err := e.processCore(q.inner)
	if err != nil {
		return nil, err
	}
	return &Response{
		inner: resp,
		Stats: ProcessStats{
			PostingsScanned: st.Postings,
			BucketsFetched:  st.IO.Seeks,
			Candidates:      st.Candidates,
			SimulatedIOms:   st.IOms(e.server.Disk),
		},
	}, nil
}

// Client is the user side: it owns the Benaloh private key, embellishes
// queries, and decrypts responses. A Client is not safe for concurrent
// use; create one per session.
type Client struct {
	engine *Engine
	inner  *core.Client
}

// NewClient generates a fresh key pair and returns a client bound to the
// engine's bucket organization. randSource supplies cryptographic
// randomness; nil selects crypto/rand (pass a deterministic reader only
// in tests).
func (e *Engine) NewClient(randSource io.Reader) (*Client, error) {
	key, err := benaloh.GenerateKey(randSource, e.opts.KeyBits, benaloh.Pow3(e.opts.ScoreSpace))
	if err != nil {
		return nil, fmt.Errorf("embellish: key generation: %w", err)
	}
	c := &Client{engine: e, inner: core.NewClient(e.org, key, rand.Int63())}
	c.inner.CryptoRand = randSource
	return c, nil
}

// Embellish implements Algorithm 3 on a natural-language query: analyze
// it with the engine's pipeline, replace each genuine term with its full
// host bucket, attach encrypted genuineness flags, and permute. Words
// outside the searchable dictionary are reported in Query.Skipped.
func (c *Client) Embellish(query string) (*Query, error) {
	tokens := c.engine.analyzer.Analyze(query)
	if len(tokens) == 0 {
		return nil, errors.New("embellish: query has no indexable terms")
	}
	var genuine []wordnet.TermID
	var skipped []string
	for _, tok := range tokens {
		t, ok := c.engine.lex.db.Lookup(tok)
		if !ok {
			skipped = append(skipped, tok)
			continue
		}
		genuine = append(genuine, t)
	}
	if len(genuine) == 0 {
		return nil, fmt.Errorf("embellish: no query term is in the searchable dictionary (skipped: %v)", skipped)
	}
	inner, skippedIDs, err := c.inner.Embellish(genuine)
	if err != nil {
		return nil, err
	}
	for _, t := range skippedIDs {
		skipped = append(skipped, c.engine.lex.db.Lemma(t))
	}
	q := &Query{inner: inner, Skipped: skipped}
	q.termNames = make([]string, len(inner.Entries))
	for i, e := range inner.Entries {
		q.termNames[i] = c.engine.lex.db.Lemma(e.Term)
	}
	return q, nil
}

// Result is one decrypted, ranked result document.
type Result struct {
	DocID int
	// Score is the quantized relevance score accumulated from the
	// genuine terms only.
	Score int64
}

// Decode implements Algorithm 5: decrypt the candidate scores, rank
// decreasing, and keep the top k (k <= 0 keeps all).
func (c *Client) Decode(resp *Response, k int) ([]Result, error) {
	if resp == nil || resp.inner == nil {
		return nil, errors.New("embellish: nil response")
	}
	ranked, err := c.inner.PostFilter(resp.inner, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ranked))
	for i, r := range ranked {
		out[i] = Result{DocID: int(r.Doc), Score: r.Score}
	}
	return out, nil
}

// Search is the end-to-end convenience: Embellish, Process, Decode.
func (c *Client) Search(query string, k int) ([]Result, error) {
	q, err := c.Embellish(query)
	if err != nil {
		return nil, err
	}
	resp, err := c.engine.Process(q)
	if err != nil {
		return nil, err
	}
	return c.Decode(resp, k)
}

// PlaintextSearch runs the same query against the engine WITHOUT any
// privacy protection, returning the quantized-score ranking a
// conventional engine would produce. Provided so applications (and the
// repository's tests) can verify Claim 1: private and plaintext rankings
// are identical.
func (e *Engine) PlaintextSearch(query string, k int) ([]Result, error) {
	tokens := e.analyzer.Analyze(query)
	var qt []int
	for _, tok := range tokens {
		if ti, ok := e.index.LookupTerm(tok); ok {
			qt = append(qt, ti)
		}
	}
	if len(qt) == 0 {
		return nil, errors.New("embellish: no query term occurs in the corpus")
	}
	res := e.index.QuantizedTopK(qt, k)
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{DocID: int(r.Doc), Score: int64(r.Score)}
	}
	return out, nil
}

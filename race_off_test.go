//go:build !race

package embellish

// raceEnabled reports that the race detector is not compiled in; see
// race_on_test.go.
const raceEnabled = false

package embellish

// Live-index benchmarks: the cost of online updates and the query-side
// price of a segmented, tombstoned corpus. BenchmarkLive* is the smoke
// set CI runs with -benchtime 1x; cmd/embellish-bench emits the
// machine-readable trajectory file (BENCH_PR2.json) on a bigger world.

import (
	"testing"

	"embellish/internal/detrand"
)

func liveBenchEngine(b *testing.B) (*Engine, *Client) {
	b.Helper()
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	e, err := NewEngine(MiniLexicon(), demoDocs(b), opts)
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	c, err := e.NewClient(detrand.New("live-bench"))
	if err != nil {
		b.Fatalf("NewClient: %v", err)
	}
	return e, c
}

// BenchmarkLiveAddDocuments measures online ingest: 10 documents per
// batch, each batch becoming one segment (merges amortized in).
func BenchmarkLiveAddDocuments(b *testing.B) {
	e, _ := liveBenchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.AddDocuments(moreDocs(e, 10, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(10*b.N), "docs")
}

// BenchmarkLiveQueryStatic is the baseline: private query against the
// engine before any update.
func BenchmarkLiveQueryStatic(b *testing.B) {
	e, c := liveBenchEngine(b)
	eq, err := c.Embellish(testQueries(e, 1)[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Process(eq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveQueryAfterUpdates is the same query after adds, deletes
// and the merges they trigger — the steady-state live corpus.
func BenchmarkLiveQueryAfterUpdates(b *testing.B) {
	e, c := liveBenchEngine(b)
	for round := 0; round < 6; round++ {
		if err := e.AddDocuments(moreDocs(e, 10, round)); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.DeleteDocuments([]int{3, 17, 125, 150}); err != nil {
		b.Fatal(err)
	}
	eq, err := c.Embellish(testQueries(e, 1)[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Process(eq); err != nil {
			b.Fatal(err)
		}
	}
}

package embellish

import (
	"errors"
	"sync"
	"time"
)

// Bounded admission control for NetServer: instead of refusing load at
// a hard connection cap, requests past the inflight limit park in a
// FIFO queue of configurable depth and wait up to a queue timeout for
// an execution slot. Overload then degrades in a controlled order —
// queue, then shed-with-retry-hint — and the latency of ACCEPTED
// requests stays bounded by queue depth × service time instead of
// collapsing, which is what the open-loop load harness in
// embellish-bench measures (docs/OPERATIONS.md).

// DefaultQueueDepth is the admission-queue depth applied when
// ServeConfig.QueueDepth is zero and admission control is enabled.
const DefaultQueueDepth = 256

// DefaultQueueTimeout is the per-request queue wait bound applied when
// ServeConfig.QueueTimeout is zero and admission control is enabled.
const DefaultQueueTimeout = time.Second

// Shed reasons, distinguished so the serving layer can send a precise
// retry hint and count them separately.
var (
	errQueueFull    = errors.New("admission queue full")
	errQueueTimeout = errors.New("queue timeout expired")
	errQueueClosed  = errors.New("admission closed")
)

// waiter is one parked request. granted is written under the
// admission lock before ready is closed, so a waiter woken by the
// close reads it race-free.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// admission is the bounded FIFO queue in front of request execution.
// Slots transfer directly from a releasing request to the head waiter
// (inflight never dips below max while the queue is non-empty), so
// FIFO order is exact and a release never races a fresh arrival for
// the freed slot.
type admission struct {
	max     int           // execution slots
	depth   int           // waiters allowed beyond the slots
	timeout time.Duration // max queue wait; negative waits forever

	mu       sync.Mutex
	inflight int
	waiters  []*waiter
	closed   bool
}

func newAdmission(max, depth int, timeout time.Duration) *admission {
	return &admission{max: max, depth: depth, timeout: timeout}
}

// acquire obtains an execution slot, parking in the FIFO queue when
// all slots are busy. It returns the time spent queued (zero for an
// immediate grant) and one of errQueueFull, errQueueTimeout or
// errQueueClosed when the request must be shed instead.
func (a *admission) acquire() (time.Duration, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return 0, errQueueClosed
	}
	if a.inflight < a.max {
		a.inflight++
		a.mu.Unlock()
		return 0, nil
	}
	if len(a.waiters) >= a.depth {
		a.mu.Unlock()
		return 0, errQueueFull
	}
	w := &waiter{ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	start := time.Now()
	var timeoutC <-chan time.Time
	if a.timeout >= 0 {
		timer := time.NewTimer(a.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case <-w.ready:
		// granted was written under the lock before the close; the
		// close orders that write before this read.
		if w.granted {
			return time.Since(start), nil
		}
		return time.Since(start), errQueueClosed
	case <-timeoutC:
		a.mu.Lock()
		if w.granted {
			// The grant raced the timer: the slot is ours, take it.
			a.mu.Unlock()
			return time.Since(start), nil
		}
		for i, x := range a.waiters {
			if x == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
		return time.Since(start), errQueueTimeout
	}
}

// release returns an execution slot: the head waiter inherits it
// directly (inflight is unchanged), or inflight drops when nobody is
// parked.
func (a *admission) release() {
	a.mu.Lock()
	if len(a.waiters) > 0 {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		w.granted = true
		close(w.ready)
		a.mu.Unlock()
		return
	}
	a.inflight--
	a.mu.Unlock()
}

// queued reports the number of currently parked requests.
func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

// abort sheds every parked waiter and refuses all future acquires —
// the shutdown path, run AFTER the drain so waiters normally empty out
// through granted slots first.
func (a *admission) abort() {
	a.mu.Lock()
	a.closed = true
	ws := a.waiters
	a.waiters = nil
	a.mu.Unlock()
	for _, w := range ws {
		close(w.ready)
	}
}

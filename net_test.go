package embellish

import (
	"net"
	"strings"
	"sync"
	"testing"

	"embellish/internal/detrand"
	"embellish/internal/wire"
)

// TestSearchRemoteOverPipe runs the full protocol over an in-memory
// duplex pipe: the remote ranking must equal both the in-process private
// search and the plaintext search.
func TestSearchRemoteOverPipe(t *testing.T) {
	e, c := testEngine(t)
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- e.ServeConn(server) }()

	query := e.lex.db.Lemma(e.searchable[4]) + " " + e.lex.db.Lemma(e.searchable[9])
	remote, err := c.SearchRemote(client, query, 10)
	if err != nil {
		t.Fatal(err)
	}
	local, err := c.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote %d results, local %d", len(remote), len(local))
	}
	for i := range local {
		if remote[i] != local[i] {
			t.Fatalf("rank %d: remote %+v local %+v", i, remote[i], local[i])
		}
	}

	// Connection reuse: a second query on the same conn.
	query2 := e.lex.db.Lemma(e.searchable[1])
	if _, err := c.SearchRemote(client, query2, 5); err != nil {
		t.Fatalf("second query on same connection: %v", err)
	}

	client.Close()
	if err := <-done; err != nil {
		t.Fatalf("server exited with %v", err)
	}
}

// TestServeConnRecoverableError verifies malformed frames produce a
// protocol error without killing the session.
func TestServeConnRecoverableError(t *testing.T) {
	e, c := testEngine(t)
	client, server := net.Pipe()
	go e.ServeConn(server)
	defer client.Close()

	// Send a non-query frame; expect a TypeError reply.
	if err := wire.WriteError(client, "hello"); err != nil {
		t.Fatal(err)
	}
	typ, body, err := wire.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeError || !strings.Contains(string(body), "unexpected message type") {
		t.Fatalf("got type %d body %q", typ, body)
	}

	// The session must still answer a real query afterwards.
	query := e.lex.db.Lemma(e.searchable[3])
	if _, err := c.SearchRemote(client, query, 5); err != nil {
		t.Fatalf("query after protocol error: %v", err)
	}
}

// TestServeOverTCP exercises the real listener path with concurrent
// clients.
func TestServeOverTCP(t *testing.T) {
	e, _ := testEngine(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go e.Serve(l)
	defer l.Close()

	query := e.lex.db.Lemma(e.searchable[5])
	want, err := e.PlaintextSearch(query, 5)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			// Each client has its own key pair.
			cl, err := e.NewClient(detrand.New("tcp-client-" + string(rune('a'+i))))
			if err != nil {
				errs <- err
				return
			}
			got, err := cl.SearchRemote(conn, query, 5)
			if err != nil {
				errs <- err
				return
			}
			for j := range want {
				if got[j] != want[j] {
					errs <- &mismatchError{}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{}

func (*mismatchError) Error() string { return "remote ranking diverged from plaintext" }

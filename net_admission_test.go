package embellish

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"embellish/internal/detrand"
	"embellish/internal/wire"
)

// admStart listens on loopback, serves srv on it, and returns the
// address. The listener is closed by t.Cleanup, which also unsticks any
// goroutine still blocked in Serve.
func admStart(t *testing.T, srv *NetServer) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// admDial dials the server and builds a dedicated client for the
// connection (clients hold per-session randomness, so concurrent
// goroutines must not share one).
func admDial(t *testing.T, e *Engine, addr, who string) (net.Conn, *Client) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c, err := e.NewClient(detrand.New("adm-" + who))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return conn, c
}

// admWait polls the server's stats until cond holds; the admission
// queue has no test-visible hooks for "request parked", so ordering is
// established through the Queued gauge.
func admWait(t *testing.T, srv *NetServer, what string, cond func(ServeStats) bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond(srv.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (stats %+v)", what, srv.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdmissionQueueFullShedsAndConnSurvives: with the single execution
// slot held and the one queue seat taken, a third request is shed
// immediately with the typed overload error — and the connection that
// was refused keeps working once capacity returns.
func TestAdmissionQueueFullShedsAndConnSurvives(t *testing.T) {
	e, _ := testEngine(t)
	srv := e.NewNetServer(ServeConfig{MaxConns: -1, MaxInflight: 1, QueueDepth: 1, QueueTimeout: -1})
	admitted := make(chan byte, 16)
	release := make(chan struct{})
	srv.testHookAdmitted = func(typ byte) { admitted <- typ; <-release }
	addr := admStart(t, srv)

	query := e.lex.db.Lemma(e.searchable[2])
	want, err := e.PlaintextSearch(query, 5)
	if err != nil {
		t.Fatal(err)
	}

	connA, clA := admDial(t, e, addr, "a")
	connB, clB := admDial(t, e, addr, "b")
	connC, clC := admDial(t, e, addr, "c")

	errA := make(chan error, 1)
	go func() { _, err := clA.SearchRemote(connA, query, 5); errA <- err }()
	<-admitted // A holds the slot, parked in the hook

	errB := make(chan error, 1)
	go func() { _, err := clB.SearchRemote(connB, query, 5); errB <- err }()
	admWait(t, srv, "B to queue", func(st ServeStats) bool { return st.Queued == 1 })

	// C finds slot and queue both taken: immediate typed shed.
	if _, err := clC.SearchRemote(connC, query, 5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full refusal: err %v, want ErrOverloaded", err)
	} else if !strings.Contains(err.Error(), "admission queue full") {
		t.Fatalf("queue-full refusal lacks the retry hint: %v", err)
	}
	if st := srv.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1", st.ShedQueueFull)
	}

	close(release)
	if err := <-errA; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}

	// The shed closed nothing: the same connection now gets a full answer.
	got, err := clC.SearchRemote(connC, query, 5)
	if err != nil {
		t.Fatalf("retry on shed connection: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retry ranking diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestAdmissionFIFOOrder: requests parked behind a held slot are
// admitted strictly in arrival order, across message types. Each
// parked request is a distinct wire type, so the admission hook's type
// trace IS the order.
func TestAdmissionFIFOOrder(t *testing.T) {
	e, _ := cancelEngine(t, 777, false)
	srv := e.NewNetServer(ServeConfig{MaxConns: -1, AllowUpdates: true, MaxInflight: 1, QueueDepth: 8, QueueTimeout: -1})
	var mu sync.Mutex
	var order []byte
	gate := make(chan struct{})
	srv.testHookAdmitted = func(typ byte) {
		mu.Lock()
		order = append(order, typ)
		first := len(order) == 1
		mu.Unlock()
		if first {
			<-gate
		}
	}
	addr := admStart(t, srv)

	query := e.lex.db.Lemma(e.searchable[1])
	docText := strings.Repeat(query+" ", 40)

	conn0, cl0 := admDial(t, e, addr, "blocker")
	conn1, _ := admDial(t, e, addr, "add")
	conn2, cl2 := admDial(t, e, addr, "search")
	conn3, _ := admDial(t, e, addr, "delete")
	conn4, cl4 := admDial(t, e, addr, "batch")

	errs := make(chan error, 5)
	go func() { _, err := cl0.SearchRemote(conn0, query, 5); errs <- err }()
	admWait(t, srv, "blocker admission", func(ServeStats) bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 1
	})

	// Park four requests of four distinct types, strictly one after the
	// other (each send waits until the previous is in the queue).
	go func() { _, err := AddDocumentsRemote(conn1, []Document{{ID: 120, Text: docText}}); errs <- err }()
	admWait(t, srv, "add to queue", func(st ServeStats) bool { return st.Queued == 1 })
	go func() { _, err := cl2.SearchRemote(conn2, query, 5); errs <- err }()
	admWait(t, srv, "search to queue", func(st ServeStats) bool { return st.Queued == 2 })
	go func() { _, err := DeleteDocumentsRemote(conn3, []int{120}); errs <- err }()
	admWait(t, srv, "delete to queue", func(st ServeStats) bool { return st.Queued == 3 })
	go func() { _, err := cl4.SearchRemoteBatch(conn4, []string{query, query}, 5); errs <- err }()
	admWait(t, srv, "batch to queue", func(st ServeStats) bool { return st.Queued == 4 })

	close(gate)
	for i := 0; i < 5; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	wantOrder := []byte{wire.TypeQuery, wire.TypeAddDocs, wire.TypeQuery, wire.TypeDeleteDocs, wire.TypeBatchQuery}
	if len(order) != len(wantOrder) {
		t.Fatalf("admitted %d requests, want %d (%v)", len(order), len(wantOrder), order)
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("admission order %v, want %v: queue is not FIFO", order, wantOrder)
		}
	}
}

// TestAdmissionQueueTimeout: a request whose queue wait exceeds
// QueueTimeout is shed with the typed overload error, counted, and its
// connection stays usable.
func TestAdmissionQueueTimeout(t *testing.T) {
	e, _ := testEngine(t)
	srv := e.NewNetServer(ServeConfig{MaxConns: -1, MaxInflight: 1, QueueDepth: 8, QueueTimeout: 80 * time.Millisecond})
	admitted := make(chan byte, 16)
	release := make(chan struct{})
	srv.testHookAdmitted = func(typ byte) { admitted <- typ; <-release }
	addr := admStart(t, srv)

	query := e.lex.db.Lemma(e.searchable[4])
	connA, clA := admDial(t, e, addr, "ta")
	connB, clB := admDial(t, e, addr, "tb")

	errA := make(chan error, 1)
	go func() { _, err := clA.SearchRemote(connA, query, 5); errA <- err }()
	<-admitted

	start := time.Now()
	_, err := clB.SearchRemote(connB, query, 5)
	waited := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-timeout refusal: err %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "queue wait exceeded") {
		t.Fatalf("queue-timeout refusal lacks the reason: %v", err)
	}
	if waited < 80*time.Millisecond {
		t.Fatalf("request shed after %v, before its 80ms queue allowance", waited)
	}
	if st := srv.Stats(); st.ShedQueueTimeout != 1 {
		t.Fatalf("ShedQueueTimeout = %d, want 1", st.ShedQueueTimeout)
	}

	close(release)
	if err := <-errA; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	if _, err := clB.SearchRemote(connB, query, 5); err != nil {
		t.Fatalf("retry on timed-out connection: %v", err)
	}
}

// TestShutdownDrainsQueuedRequests: a graceful Shutdown must answer
// requests already parked in the admission queue — they were accepted,
// so the drain covers them exactly like executing ones.
func TestShutdownDrainsQueuedRequests(t *testing.T) {
	e, _ := testEngine(t)
	srv := e.NewNetServer(ServeConfig{MaxConns: -1, MaxInflight: 1, QueueDepth: 8, QueueTimeout: -1})
	admitted := make(chan byte, 16)
	release := make(chan struct{})
	srv.testHookAdmitted = func(typ byte) { admitted <- typ; <-release }
	addr := admStart(t, srv)

	query := e.lex.db.Lemma(e.searchable[3])
	want, err := e.PlaintextSearch(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	connA, clA := admDial(t, e, addr, "sa")
	connB, clB := admDial(t, e, addr, "sb")

	errA := make(chan error, 1)
	go func() { _, err := clA.SearchRemote(connA, query, 5); errA <- err }()
	<-admitted

	type res struct {
		got []Result
		err error
	}
	resB := make(chan res, 1)
	go func() {
		got, err := clB.SearchRemote(connB, query, 5)
		resB <- res{got, err}
	}()
	admWait(t, srv, "B to queue", func(st ServeStats) bool { return st.Queued == 1 })

	go func() {
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	if err := <-errA; err != nil {
		t.Fatalf("executing request cut by Shutdown: %v", err)
	}
	r := <-resB
	if r.err != nil {
		t.Fatalf("queued request cut by Shutdown: %v", r.err)
	}
	for i := range want {
		if r.got[i] != want[i] {
			t.Fatalf("drained answer diverged at %d: %v != %v", i, r.got[i], want[i])
		}
	}
}

// TestIdleDeadlineQueuedRequest is the satellite regression test for
// the idle-deadline/queued-request interaction: on a slow-draining
// server (slot held far longer than IdleTimeout), a request parked in
// the admission queue must be answered — the idle read deadline exists
// to reap silent peers, never a peer whose request the server already
// read — and the connection must survive for the next request.
func TestIdleDeadlineQueuedRequest(t *testing.T) {
	e, _ := testEngine(t)
	const idle = 120 * time.Millisecond
	const hold = 500 * time.Millisecond
	srv := e.NewNetServer(ServeConfig{MaxConns: -1, MaxInflight: 1, QueueDepth: 8, QueueTimeout: -1, IdleTimeout: idle})
	admitted := make(chan byte, 16)
	var holdOnce sync.Once
	srv.testHookAdmitted = func(typ byte) {
		admitted <- typ
		holdOnce.Do(func() { time.Sleep(hold) }) // slow-draining slot holder
	}
	addr := admStart(t, srv)

	query := e.lex.db.Lemma(e.searchable[6])
	want, err := e.PlaintextSearch(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	connA, clA := admDial(t, e, addr, "ia")
	connB, clB := admDial(t, e, addr, "ib")

	errA := make(chan error, 1)
	go func() { _, err := clA.SearchRemote(connA, query, 5); errA <- err }()
	<-admitted

	// B parks in the queue for ~hold, which is >4x the idle window.
	start := time.Now()
	got, err := clB.SearchRemote(connB, query, 5)
	parked := time.Since(start)
	if err != nil {
		t.Fatalf("queued request killed on an idle-deadline server: %v", err)
	}
	if parked < hold/2 {
		t.Fatalf("request answered after %v; it never actually parked behind the %v hold", parked, hold)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parked answer diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
	if err := <-errA; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}

	// The connection outlives the long park: a fresh request on the
	// same conn (sent well within a NEW idle window) is served.
	if _, err := clB.SearchRemote(connB, query, 5); err != nil {
		t.Fatalf("connection dead after queued request: %v", err)
	}
}

// TestServerStatsWhileSaturated: the stats surface bypasses admission,
// so an operator can still read queue depth and inflight while the
// server is wedged — exactly when it matters.
func TestServerStatsWhileSaturated(t *testing.T) {
	e, _ := testEngine(t)
	srv := e.NewNetServer(ServeConfig{MaxConns: -1, MaxInflight: 1, QueueDepth: 4, QueueTimeout: -1})
	admitted := make(chan byte, 16)
	release := make(chan struct{})
	srv.testHookAdmitted = func(typ byte) { admitted <- typ; <-release }
	addr := admStart(t, srv)

	query := e.lex.db.Lemma(e.searchable[5])
	connA, clA := admDial(t, e, addr, "ma")
	connB, clB := admDial(t, e, addr, "mb")
	connS, _ := admDial(t, e, addr, "ms")

	errA := make(chan error, 1)
	go func() { _, err := clA.SearchRemote(connA, query, 5); errA <- err }()
	<-admitted
	errB := make(chan error, 1)
	go func() { _, err := clB.SearchRemote(connB, query, 5); errB <- err }()
	admWait(t, srv, "B to queue", func(st ServeStats) bool { return st.Queued == 1 })

	start := time.Now()
	st, err := ServerStats(connS)
	if err != nil {
		t.Fatalf("ServerStats on a saturated server: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("ServerStats took %v on a saturated server; it must not queue", took)
	}
	if st.Queued != 1 {
		t.Fatalf("Queued = %d, want 1", st.Queued)
	}
	if st.Inflight < 2 {
		t.Fatalf("Inflight = %d, want >= 2 (executing + queued)", st.Inflight)
	}

	close(release)
	if err := <-errA; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
}

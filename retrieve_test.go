package embellish

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"embellish/internal/detrand"
)

// storeWorld builds a retrieval-enabled engine over a corpus of SMALL
// deterministic documents (PIR fetch cost scales with total stored
// bytes, so the world stays tiny) and returns the id -> exact bytes
// map the tests treat as ground truth.
func storeWorld(t testing.TB, nDocs, blockSize int) (*Engine, *Client, map[int]string) {
	t.Helper()
	lemmas := miniLemmas()
	texts := make(map[int]string, nDocs)
	docs := make([]Document, nDocs)
	for i := range docs {
		texts[i] = storeDocText(i, lemmas)
		docs[i] = Document{ID: i, Text: texts[i]}
	}
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.StoreDocuments = true
	opts.BlockSize = blockSize
	opts.RetrievalKeyBits = 96
	e, err := NewEngine(MiniLexicon(), docs, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	c, err := e.NewClient(detrand.New("store-test"))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return e, c, texts
}

func miniLemmas() []string {
	lex := MiniLexicon()
	var lemmas []string
	for _, tm := range lex.db.AllTerms() {
		lemmas = append(lemmas, lex.db.Lemma(tm))
	}
	return lemmas
}

// storeDocText is the deterministic ground-truth document body for any
// id, including ids added after construction: a few indexable lemmas
// plus an id marker that makes every document's bytes unique.
func storeDocText(id int, lemmas []string) string {
	var b strings.Builder
	for j := 0; j < 3+id%3; j++ {
		b.WriteString(lemmas[1+(id*5+j*3)%24])
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "#doc-%d", id)
	return b.String()
}

// fillerDocText is churn fodder: it reuses ONE lemma the test queries
// never mention, so filler documents cannot be ranked for those
// queries and deleting them mid-test can never invalidate a result a
// fetcher is about to retrieve.
func fillerDocText(id int, lemmas []string) string {
	return fmt.Sprintf("%s %s #filler-%d", lemmas[30], lemmas[30], id)
}

func TestFetchDocumentsLocal(t *testing.T) {
	e, c, texts := storeWorld(t, 40, 32)
	if !e.StoresDocuments() {
		t.Fatal("StoresDocuments = false on a storing engine")
	}
	lemmas := miniLemmas()
	res, err := c.Search(lemmas[1]+" "+lemmas[6], 5)
	if err != nil {
		t.Fatal(err)
	}
	var winners []int
	for _, r := range res {
		if r.Score > 0 {
			winners = append(winners, r.DocID)
		}
	}
	if len(winners) == 0 {
		t.Fatal("query matched nothing; test world broken")
	}
	got, st, err := c.FetchDocuments(winners)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range winners {
		if string(got[i]) != texts[id] {
			t.Fatalf("doc %d fetched %q, want %q", id, got[i], texts[id])
		}
		direct, err := e.Document(id)
		if err != nil || !bytes.Equal(direct, got[i]) {
			t.Fatalf("doc %d: direct read %q (%v) != PIR fetch %q", id, direct, err, got[i])
		}
	}
	if st.Runs == 0 || st.QueryBytes == 0 || st.AnswerBytes == 0 {
		t.Fatalf("fetch stats not accounted: %+v", st)
	}
}

func TestFetchValidation(t *testing.T) {
	e, c, _ := storeWorld(t, 30, 32)
	if _, _, err := c.FetchDocuments(nil); err == nil {
		t.Fatal("empty fetch accepted")
	}
	if _, _, err := c.FetchDocuments([]int{e.NextDocID()}); err == nil {
		t.Fatal("unassigned id fetched")
	}
	if err := e.DeleteDocuments([]int{3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchDocuments([]int{3}); err == nil {
		t.Fatal("tombstoned id fetched")
	}
	if _, err := e.Document(3); err == nil {
		t.Fatal("tombstoned id readable")
	}

	// Engines without a store refuse every retrieval entry point.
	plain, pc := liveTestEngine(t, 0)
	if plain.StoresDocuments() {
		t.Fatal("StoresDocuments = true without Options.StoreDocuments")
	}
	if _, err := plain.Document(0); err == nil {
		t.Fatal("store-less Document succeeded")
	}
	if _, _, err := pc.FetchDocuments([]int{0}); err == nil {
		t.Fatal("store-less fetch succeeded")
	}
	if _, err := plain.Snapshot().Document(0); err == nil {
		t.Fatal("store-less snapshot Document succeeded")
	}
}

// TestSnapshotPinsDocuments: a Snapshot keeps serving a document's
// bytes after its deletion, mirroring PlaintextSearch's pinning.
func TestSnapshotPinsDocuments(t *testing.T) {
	e, _, texts := storeWorld(t, 20, 32)
	pinned := e.Snapshot()
	if err := e.DeleteDocuments([]int{5}); err != nil {
		t.Fatal(err)
	}
	got, err := pinned.Document(5)
	if err != nil || string(got) != texts[5] {
		t.Fatalf("pinned snapshot lost doc 5: %q, %v", got, err)
	}
	if _, err := e.Snapshot().Document(5); err == nil {
		t.Fatal("fresh snapshot serves a tombstoned document")
	}
}

// TestLoadRejectsStoreTombstoneDesync: a file whose doc-store Deleted
// flags disagree with the index tombstones is refused at load — such
// an engine would rank documents it cannot fetch and fail deletes
// halfway.
func TestLoadRejectsStoreTombstoneDesync(t *testing.T) {
	e, _, _ := storeWorld(t, 20, 32)
	// Desynchronize deliberately through the internal handle: tombstone
	// the store WITHOUT the index.
	if err := e.store.Delete(4); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "disagree") {
		t.Fatalf("desynchronized store/tombstones loaded: %v", err)
	}
}

// TestPIRFetchPropertyUnderChurn is the property test: for a random
// corpus and a random interleaving of adds, deletes, merges and
// compactions — with a concurrent PIR fetcher running throughout — the
// bytes privately fetched for every live document equal the direct
// store read AND the originally indexed text, and every tombstoned id
// errors from both paths. Run it with -race: the fetcher shares the
// engine with the mutator.
func TestPIRFetchPropertyUnderChurn(t *testing.T) {
	lemmas := miniLemmas()
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			e, _, texts := storeWorld(t, 30, 32)
			rng := rand.New(rand.NewSource(seed))
			var mu sync.Mutex // guards texts + deleted
			deleted := map[int]bool{}

			// stableLive returns live ids the mutator will never delete
			// (non-filler), safe for the concurrent fetcher.
			stableLive := func() []int {
				mu.Lock()
				defer mu.Unlock()
				var ids []int
				for id := range texts {
					if !deleted[id] && !strings.Contains(texts[id], "#filler-") {
						ids = append(ids, id)
					}
				}
				return ids
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // concurrent fetcher with its own client
				defer wg.Done()
				fc, err := e.NewClient(detrand.New("churn-fetcher"))
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					ids := stableLive()
					id := ids[i%len(ids)]
					got, _, err := fc.FetchDocuments([]int{id})
					if err != nil {
						t.Errorf("concurrent fetch %d: %v", id, err)
						return
					}
					mu.Lock()
					want := texts[id]
					mu.Unlock()
					if string(got[0]) != want {
						t.Errorf("concurrent fetch %d = %q, want %q", id, got[0], want)
						return
					}
				}
			}()

			// Mutator: random interleaving of adds, deletes, merges.
			for op := 0; op < 12; op++ {
				switch rng.Intn(4) {
				case 0, 1: // add a small batch (mix of real and filler docs)
					base := e.NextDocID()
					n := 1 + rng.Intn(3)
					docs := make([]Document, n)
					mu.Lock()
					for i := range docs {
						id := base + i
						if rng.Intn(2) == 0 {
							texts[id] = fillerDocText(id, lemmas)
						} else {
							texts[id] = storeDocText(id, lemmas)
						}
						docs[i] = Document{ID: id, Text: texts[id]}
					}
					mu.Unlock()
					if err := e.AddDocuments(docs); err != nil {
						t.Fatalf("op %d add: %v", op, err)
					}
				case 2: // delete one random live filler doc
					mu.Lock()
					var cands []int
					for id := range texts {
						if !deleted[id] && strings.Contains(texts[id], "#filler-") {
							cands = append(cands, id)
						}
					}
					mu.Unlock()
					if len(cands) == 0 {
						continue
					}
					id := cands[rng.Intn(len(cands))]
					if err := e.DeleteDocuments([]int{id}); err != nil {
						t.Fatalf("op %d delete %d: %v", op, id, err)
					}
					mu.Lock()
					deleted[id] = true
					mu.Unlock()
				case 3: // force the index to churn segments
					if rng.Intn(2) == 0 {
						e.Compact()
					} else {
						e.live.MergeNow()
					}
				}
			}
			close(stop)
			wg.Wait()
			if t.Failed() {
				return
			}

			// Final sweep: every id ever assigned, via a fresh client.
			fc, err := e.NewClient(detrand.New("sweep-fetcher"))
			if err != nil {
				t.Fatal(err)
			}
			snap := e.Snapshot()
			live := map[int]bool{}
			for _, d := range snap.LiveDocIDs() {
				live[d] = true
			}
			if len(live) != e.NumDocs() {
				t.Fatalf("LiveDocIDs returned %d ids for %d live docs", len(live), e.NumDocs())
			}
			for id := 0; id < e.NextDocID(); id++ {
				if deleted[id] != !live[id] {
					t.Fatalf("doc %d: test ledger deleted=%v, index live=%v", id, deleted[id], live[id])
				}
				if deleted[id] {
					if _, _, err := fc.FetchDocuments([]int{id}); err == nil {
						t.Fatalf("tombstoned doc %d fetched", id)
					}
					if _, err := e.Document(id); err == nil {
						t.Fatalf("tombstoned doc %d readable", id)
					}
					continue
				}
				got, _, err := fc.FetchDocuments([]int{id})
				if err != nil {
					t.Fatalf("sweep fetch %d: %v", id, err)
				}
				direct, err := snap.Document(id)
				if err != nil {
					t.Fatalf("sweep direct read %d: %v", id, err)
				}
				if string(got[0]) != texts[id] || !bytes.Equal(direct, got[0]) {
					t.Fatalf("doc %d: PIR %q, direct %q, want %q", id, got[0], direct, texts[id])
				}
			}
		})
	}
}

package embellish

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"embellish/internal/detrand"
)

// startRetrievalServer serves the engine over TCP and returns the
// address plus a cleanup-registered shutdown.
func startRetrievalServer(t *testing.T, e *Engine, cfg ServeConfig) string {
	t.Helper()
	srv := e.NewNetServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return l.Addr().String()
}

// TestRemoteSearchThenPIRFetchDuringChurn is the end-to-end acceptance
// path: a remote client ranks privately over TCP and then PIR-fetches
// the winning documents over the same connection, byte-identical to
// the indexed text, while another goroutine churns the corpus with
// adds and deletes the whole time. A quiescent final pass ties the
// fetched bytes to PlaintextSearch's selection exactly.
func TestRemoteSearchThenPIRFetchDuringChurn(t *testing.T) {
	lemmas := miniLemmas()
	e, _, texts := storeWorld(t, 30, 32)
	var mu sync.Mutex // guards texts
	addr := startRetrievalServer(t, e, ServeConfig{AllowUpdates: true, AllowRetrieval: true})

	queries := []string{
		lemmas[1] + " " + lemmas[6],
		lemmas[11] + " " + lemmas[16],
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn: grow the corpus, delete only filler docs
		defer wg.Done()
		var fillers []int
		// Bounded and throttled: PIR fetch cost scales with the block
		// count, so unchecked growth would starve the fetch rounds.
		for i := 0; i < 25; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			base := e.NextDocID()
			docs := make([]Document, 2)
			mu.Lock()
			for j := range docs {
				id := base + j
				if j == 0 {
					texts[id] = fillerDocText(id, lemmas)
					fillers = append(fillers, id)
				} else {
					texts[id] = storeDocText(id, lemmas)
				}
				docs[j] = Document{ID: id, Text: texts[id]}
			}
			mu.Unlock()
			if err := e.AddDocuments(docs); err != nil {
				t.Errorf("churn add: %v", err)
				return
			}
			if len(fillers) > 3 {
				id := fillers[0]
				fillers = fillers[1:]
				if err := e.DeleteDocuments([]int{id}); err != nil {
					t.Errorf("churn delete %d: %v", id, err)
					return
				}
			}
		}
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := e.NewClient(detrand.New("remote-fetcher"))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		query := queries[round%len(queries)]
		res, err := c.SearchRemote(conn, query, 5)
		if err != nil {
			t.Fatalf("round %d search: %v", round, err)
		}
		var winners []int
		for _, r := range res {
			if r.Score > 0 {
				winners = append(winners, r.DocID)
			}
		}
		if len(winners) == 0 {
			t.Fatalf("round %d: query %q matched nothing", round, query)
		}
		got, st, err := c.FetchDocumentsRemote(conn, winners)
		if err != nil {
			t.Fatalf("round %d fetch: %v", round, err)
		}
		if st.Runs == 0 {
			t.Fatalf("round %d: no PIR executions accounted", round)
		}
		mu.Lock()
		for i, id := range winners {
			if want := texts[id]; string(got[i]) != want {
				mu.Unlock()
				t.Fatalf("round %d doc %d: fetched %q, want %q", round, id, got[i], want)
			}
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiescent pass: with churn stopped, the remote ranking equals
	// PlaintextSearch on the same corpus state, and the PIR-fetched
	// bytes equal the direct reads of exactly those selected documents.
	snap := e.Snapshot()
	query := queries[0]
	res, err := c.SearchRemote(conn, query, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := snap.PlaintextSearch(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < len(plain) {
		t.Fatalf("remote returned %d results for %d plaintext hits", len(res), len(plain))
	}
	ids := make([]int, len(plain))
	for i, p := range plain {
		if res[i].DocID != p.DocID || res[i].Score != p.Score {
			t.Fatalf("rank %d: remote %+v, plaintext %+v", i, res[i], p)
		}
		ids[i] = p.DocID
	}
	got, _, err := c.FetchDocumentsRemote(conn, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		direct, err := snap.Document(id)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[i]) != string(direct) {
			t.Fatalf("doc %d: PIR fetch %q != direct %q", id, got[i], direct)
		}
	}
	// A deleted id is refused remotely too.
	var deletedID = -1
	mu.Lock()
	for id, text := range texts {
		if strings.Contains(text, "#filler-") {
			if _, err := e.Document(id); err != nil {
				deletedID = id
				break
			}
		}
	}
	mu.Unlock()
	if deletedID >= 0 {
		if _, _, err := c.FetchDocumentsRemote(conn, []int{deletedID}); err == nil {
			t.Fatalf("tombstoned doc %d fetched remotely", deletedID)
		}
	}
}

// TestRetrievalDisabledByDefault: a server without AllowRetrieval
// refuses params and query messages with a wire error (and keeps the
// connection serving searches); a retrieval-enabled server over a
// store-less engine explains itself too.
func TestRetrievalDisabledByDefault(t *testing.T) {
	e, _, _ := storeWorld(t, 30, 32)
	addr := startRetrievalServer(t, e, ServeConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := e.NewClient(detrand.New("gate-client"))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.FetchDocumentsRemote(conn, []int{0})
	if err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("retrieval not refused: %v", err)
	}
	// The connection survives the refusal: searches still work.
	lemmas := miniLemmas()
	if _, err := c.SearchRemote(conn, lemmas[1], 3); err != nil {
		t.Fatalf("search after refused retrieval: %v", err)
	}

	// Retrieval enabled but nothing stored.
	plain, pc := liveTestEngine(t, 0)
	addr2 := startRetrievalServer(t, plain, ServeConfig{AllowRetrieval: true})
	conn2, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	_, _, err = pc.FetchDocumentsRemote(conn2, []int{0})
	if err == nil || !strings.Contains(err.Error(), "stores no documents") {
		t.Fatalf("store-less retrieval not refused: %v", err)
	}
}

// TestServeStatsCountRetrievals: the Retrievals counter tracks PIR
// protocol executions.
func TestServeStatsCountRetrievals(t *testing.T) {
	e, _, _ := storeWorld(t, 20, 32)
	srv := e.NewNetServer(ServeConfig{AllowRetrieval: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.NewClient(detrand.New("stats-client"))
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := c.FetchDocumentsRemote(conn, []int{2, 7})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	stats := srv.Stats()
	if stats.Retrievals != int64(st.Runs) {
		t.Fatalf("server counted %d retrievals, client ran %d", stats.Retrievals, st.Runs)
	}
	if fmt.Sprint(st.Runs) == "0" {
		t.Fatal("no PIR executions ran")
	}
}

package embellish

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"embellish/internal/detrand"
)

// demoDocs builds a small corpus over the mini lexicon's vocabulary so
// facade tests exercise realistic multi-word terms.
func demoDocs(t testing.TB) []Document {
	t.Helper()
	lex := MiniLexicon()
	var lemmas []string
	for _, tm := range lex.db.AllTerms() {
		lemmas = append(lemmas, lex.db.Lemma(tm))
	}
	rng := rand.New(rand.NewSource(17))
	docs := make([]Document, 120)
	for i := range docs {
		var b strings.Builder
		n := 30 + rng.Intn(40)
		for j := 0; j < n; j++ {
			b.WriteString(lemmas[rng.Intn(len(lemmas))])
			b.WriteByte(' ')
		}
		docs[i] = Document{ID: i, Text: b.String()}
	}
	return docs
}

var (
	cachedEngine *Engine
	cachedClient *Client
)

func testEngine(t *testing.T) (*Engine, *Client) {
	t.Helper()
	if cachedEngine == nil {
		opts := DefaultOptions()
		opts.BucketSize = 4
		opts.KeyBits = 256
		opts.ScoreSpace = 10
		e, err := NewEngine(MiniLexicon(), demoDocs(t), opts)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		c, err := e.NewClient(detrand.New("facade-test"))
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		cachedEngine, cachedClient = e, c
	}
	return cachedEngine, cachedClient
}

func TestNewEngineValidation(t *testing.T) {
	docs := []Document{{ID: 0, Text: "osteosarcoma therapy"}}
	if _, err := NewEngine(nil, docs, DefaultOptions()); err == nil {
		t.Fatal("nil lexicon accepted")
	}
	if _, err := NewEngine(MiniLexicon(), nil, DefaultOptions()); err == nil {
		t.Fatal("no documents accepted")
	}
	bad := DefaultOptions()
	bad.BucketSize = 1
	if _, err := NewEngine(MiniLexicon(), docs, bad); err == nil {
		t.Fatal("BucketSize=1 accepted")
	}
	// A single tiny document cannot yield enough searchable terms.
	if _, err := NewEngine(MiniLexicon(), docs, DefaultOptions()); err == nil {
		t.Fatal("starved dictionary accepted")
	}
}

func TestEngineAccessors(t *testing.T) {
	e, _ := testEngine(t)
	if e.NumDocs() != 120 {
		t.Fatalf("NumDocs = %d", e.NumDocs())
	}
	if e.NumSearchableTerms() < 8 {
		t.Fatalf("searchable dictionary too small: %d", e.NumSearchableTerms())
	}
	if e.NumBuckets() < 2 {
		t.Fatalf("NumBuckets = %d", e.NumBuckets())
	}
}

func TestBucketLookup(t *testing.T) {
	e, _ := testEngine(t)
	// Find any searchable lemma via its bucket.
	lemma := e.lex.db.Lemma(e.searchable[0])
	decoys, ok := e.Bucket(lemma)
	if !ok {
		t.Fatalf("Bucket(%q) not found", lemma)
	}
	if len(decoys) < 2 {
		t.Fatalf("bucket of %q has %d terms", lemma, len(decoys))
	}
	found := false
	for _, d := range decoys {
		if d == lemma {
			found = true
		}
	}
	if !found {
		t.Fatalf("bucket of %q does not contain it: %v", lemma, decoys)
	}
	if _, ok := e.Bucket("no-such-term-xyz"); ok {
		t.Fatal("unknown lemma reported a bucket")
	}
}

func TestEmbellishHidesQueryAmongDecoys(t *testing.T) {
	e, c := testEngine(t)
	lemma := e.lex.db.Lemma(e.searchable[3])
	q, err := c.Embellish(lemma)
	if err != nil {
		t.Fatal(err)
	}
	terms := q.Terms()
	if len(terms) != e.opts.BucketSize {
		t.Fatalf("embellished query has %d terms, want BucketSize=%d", len(terms), e.opts.BucketSize)
	}
	found := false
	for _, tm := range terms {
		if tm == lemma {
			found = true
		}
	}
	if !found {
		t.Fatalf("genuine term %q missing from embellished query %v", lemma, terms)
	}
	if q.Bytes() <= 0 {
		t.Fatal("query bytes not accounted")
	}
}

func TestEmbellishSkipsUnknownWords(t *testing.T) {
	e, c := testEngine(t)
	lemma := e.lex.db.Lemma(e.searchable[0])
	q, err := c.Embellish(lemma + " zzzunknownzzz")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Skipped) != 1 || q.Skipped[0] != "zzzunknownzzz" {
		t.Fatalf("Skipped = %v", q.Skipped)
	}
}

func TestEmbellishAllUnknownFails(t *testing.T) {
	_, c := testEngine(t)
	if _, err := c.Embellish("zzz yyy xxx"); err == nil {
		t.Fatal("fully unknown query accepted")
	}
	if _, err := c.Embellish(""); err == nil {
		t.Fatal("empty query accepted")
	}
}

// TestClaim1EndToEnd verifies the paper's Claim 1 through the public
// API: the private search ranking equals the plaintext ranking.
func TestClaim1EndToEnd(t *testing.T) {
	e, c := testEngine(t)
	for i := 0; i < 4; i++ {
		lemma := e.lex.db.Lemma(e.searchable[i*5])
		lemma2 := e.lex.db.Lemma(e.searchable[i*5+2])
		query := lemma + " " + lemma2

		private, err := c.Search(query, 10)
		if err != nil {
			t.Fatalf("query %q: %v", query, err)
		}
		plain, err := e.PlaintextSearch(query, 10)
		if err != nil {
			t.Fatalf("plaintext %q: %v", query, err)
		}
		if len(private) < len(plain) {
			t.Fatalf("query %q: private returned %d docs, plaintext %d", query, len(private), len(plain))
		}
		for j := range plain {
			if private[j].DocID != plain[j].DocID || private[j].Score != plain[j].Score {
				t.Fatalf("query %q rank %d: private (%d,%d) vs plaintext (%d,%d)",
					query, j, private[j].DocID, private[j].Score, plain[j].DocID, plain[j].Score)
			}
		}
	}
}

func TestProcessStatsPopulated(t *testing.T) {
	e, c := testEngine(t)
	q, err := c.Embellish(e.lex.db.Lemma(e.searchable[1]))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	st := resp.Stats
	if st.BucketsFetched != 1 {
		t.Fatalf("BucketsFetched = %d, want 1 for a single-term query", st.BucketsFetched)
	}
	if st.PostingsScanned == 0 || st.SimulatedIOms <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Candidates == 0 || resp.Bytes() <= 0 {
		t.Fatalf("response empty: %+v", st)
	}
}

func TestProcessNilQuery(t *testing.T) {
	e, _ := testEngine(t)
	if _, err := e.Process(nil); err == nil {
		t.Fatal("nil query accepted")
	}
}

func TestDecodeNilResponse(t *testing.T) {
	_, c := testEngine(t)
	if _, err := c.Decode(nil, 5); err == nil {
		t.Fatal("nil response accepted")
	}
}

func TestPrivacyAudit(t *testing.T) {
	e, _ := testEngine(t)
	a, err := e.PrivacyAudit(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trials != 40 {
		t.Fatalf("Trials = %d", a.Trials)
	}
	if a.SpecificitySpread >= a.RandomSpecificitySpread {
		t.Fatalf("bucket spread %.2f not below random %.2f",
			a.SpecificitySpread, a.RandomSpecificitySpread)
	}
	if a.ClosestCover > a.FarthestCover {
		t.Fatalf("closest %.2f above farthest %.2f", a.ClosestCover, a.FarthestCover)
	}
	if _, err := e.PrivacyAudit(0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestCustomLexiconWorkflow(t *testing.T) {
	// A user-built lexicon: a small hierarchy plus an antonym pair.
	lex := NewLexicon()
	root, err := lex.AddSynset([]string{"entity"}, "root")
	if err != nil {
		t.Fatal(err)
	}
	var leaves []SynsetID
	var lemmas []string
	for i := 0; i < 24; i++ {
		lemma := fmt.Sprintf("thing%02d", i)
		lemmas = append(lemmas, lemma)
		ss, err := lex.AddSynset([]string{lemma}, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := lex.AddRelation(root, ss, Hyponym); err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, ss)
	}
	if err := lex.AddRelation(leaves[0], leaves[1], Antonym); err != nil {
		t.Fatal(err)
	}
	if lex.NumTerms() != 25 || lex.NumSynsets() != 25 {
		t.Fatalf("lexicon size: %d terms, %d synsets", lex.NumTerms(), lex.NumSynsets())
	}

	rng := rand.New(rand.NewSource(5))
	docs := make([]Document, 60)
	for i := range docs {
		var b strings.Builder
		for j := 0; j < 25; j++ {
			b.WriteString(lemmas[rng.Intn(len(lemmas))])
			b.WriteByte(' ')
		}
		docs[i] = Document{ID: i, Text: b.String()}
	}
	opts := DefaultOptions()
	opts.BucketSize = 3
	opts.KeyBits = 192
	opts.ScoreSpace = 9
	eng, err := NewEngine(lex, docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The lexicon is frozen now.
	if _, err := lex.AddSynset([]string{"late"}, ""); err == nil {
		t.Fatal("frozen lexicon accepted a synset")
	}
	if err := lex.AddRelation(root, leaves[0], Meronym); err == nil {
		t.Fatal("frozen lexicon accepted a relation")
	}
	if s, ok := lex.Specificity("thing00"); !ok || s != 1 {
		t.Fatalf("Specificity(thing00) = %d,%v want 1,true", s, ok)
	}

	c, err := eng.NewClient(detrand.New("custom"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Search("thing00 thing05", 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.PlaintextSearch("thing00 thing05", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if res[i].DocID != plain[i].DocID {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

func TestLexiconValidation(t *testing.T) {
	lex := NewLexicon()
	if _, err := lex.AddSynset(nil, ""); err == nil {
		t.Fatal("empty synset accepted")
	}
	a, _ := lex.AddSynset([]string{"x"}, "")
	b, _ := lex.AddSynset([]string{"y"}, "")
	if err := lex.AddRelation(a, b, RelationType(99)); err == nil {
		t.Fatal("unknown relation type accepted")
	}
	if _, ok := lex.Specificity("x"); ok {
		t.Fatal("specificity available before freeze")
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []Options{
		{BucketSize: 0, KeyBits: 256, ScoreSpace: 9, QuantLevels: 255},
		{BucketSize: 4, KeyBits: 8, ScoreSpace: 9, QuantLevels: 255},
		{BucketSize: 4, KeyBits: 256, ScoreSpace: 0, QuantLevels: 255},
		{BucketSize: 4, KeyBits: 256, ScoreSpace: 9, QuantLevels: 0},
	}
	for i, o := range cases {
		if err := o.validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, o)
		}
	}
	if err := DefaultOptions().validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestSyntheticLexiconScale(t *testing.T) {
	lex := SyntheticLexicon(800, 3)
	if lex.NumSynsets() < 700 || lex.NumTerms() < lex.NumSynsets() {
		t.Fatalf("synthetic lexicon: %d synsets, %d terms", lex.NumSynsets(), lex.NumTerms())
	}
	if s, ok := lex.Specificity("entity"); !ok || s != 0 {
		t.Fatalf("entity specificity = %d,%v", s, ok)
	}
}

// TestClaim1UnderBM25 verifies the Appendix B generality claim through
// the public API: with Okapi BM25 scoring the private ranking still
// equals the plaintext ranking.
func TestClaim1UnderBM25(t *testing.T) {
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.Scoring = BM25
	e, err := NewEngine(MiniLexicon(), demoDocs(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.NewClient(detrand.New("bm25-test"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		query := e.lex.db.Lemma(e.searchable[i*4]) + " " + e.lex.db.Lemma(e.searchable[i*4+1])
		private, err := c.Search(query, 10)
		if err != nil {
			t.Fatalf("query %q: %v", query, err)
		}
		plain, err := e.PlaintextSearch(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		for j := range plain {
			if private[j] != plain[j] {
				t.Fatalf("BM25 query %q rank %d: %+v vs %+v", query, j, private[j], plain[j])
			}
		}
	}
	// Scoring survives engine persistence.
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.opts.Scoring != BM25 {
		t.Fatalf("scoring not persisted: %d", loaded.opts.Scoring)
	}
}

func TestOptionsRejectUnknownScoring(t *testing.T) {
	o := DefaultOptions()
	o.Scoring = Scoring(9)
	if err := o.validate(); err == nil {
		t.Fatal("unknown scoring accepted")
	}
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.Parallelism = -1
	e, err := NewEngine(MiniLexicon(), demoDocs(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.NewClient(detrand.New("parallel-test"))
	if err != nil {
		t.Fatal(err)
	}
	query := e.lex.db.Lemma(e.searchable[0]) + " " + e.lex.db.Lemma(e.searchable[6])
	private, err := c.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.PlaintextSearch(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if private[i] != plain[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, private[i], plain[i])
		}
	}
}

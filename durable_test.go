package embellish

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"embellish/internal/detrand"
)

// durableOpts is the test Durability policy: per-record fsync (so
// every acknowledged op is in the journal the instant the call
// returns) and automatic checkpoints disabled — the tests drive
// Checkpoint explicitly to control the file layout.
func durableOpts(dir string) Durability {
	return Durability{Dir: dir, Fsync: FsyncEveryRecord, CheckpointEveryOps: -1, CheckpointEveryBytes: -1}
}

// durableStoreWorld is storeWorld on a durable directory.
func durableStoreWorld(t testing.TB, dir string, nDocs, blockSize int) (*Engine, map[int]string) {
	t.Helper()
	lemmas := miniLemmas()
	texts := make(map[int]string, nDocs)
	docs := make([]Document, nDocs)
	for i := range docs {
		texts[i] = storeDocText(i, lemmas)
		docs[i] = Document{ID: i, Text: texts[i]}
	}
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.StoreDocuments = true
	opts.BlockSize = blockSize
	opts.RetrievalKeyBits = 96
	opts.Durability = durableOpts(dir)
	e, err := NewEngine(MiniLexicon(), docs, opts)
	if err != nil {
		t.Fatalf("NewEngine(durable): %v", err)
	}
	return e, texts
}

// copyDurableDir captures a durable directory's current state the way
// a crash would freeze it — without stopping the engine that is
// writing to it. Log segments are copied BEFORE checkpoint files:
// checkpoints become visible only by atomic rename after their log
// rotation, so this order can never capture a checkpoint whose log
// chain is missing (the reverse order could). Files that vanish
// mid-copy were retired by a concurrent checkpoint and are skipped.
// Failures are reported with Errorf, never Fatal — the churn test
// freezes directories from a non-test goroutine.
func copyDurableDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	copyMatching := func(wantLog bool) {
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Errorf("freezing %s: %v", src, err)
			return
		}
		for _, ent := range entries {
			name := ent.Name()
			if strings.HasSuffix(name, ".tmp") || strings.HasSuffix(name, ".log") != wantLog {
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, name))
			if os.IsNotExist(err) {
				continue // retired while we copied
			}
			if err != nil {
				t.Errorf("freezing %s: %v", name, err)
				return
			}
			if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
				t.Errorf("freezing %s: %v", name, err)
				return
			}
		}
	}
	copyMatching(true)
	copyMatching(false)
	return dst
}

// TestDurableRoundTrip: build durable, mutate, close, recover — the
// recovered engine serves the exact post-mutation corpus, then keeps
// accepting and journaling updates.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, texts := durableStoreWorld(t, dir, 20, 32)
	lemmas := miniLemmas()
	if !e.Durable() {
		t.Fatal("Durable() = false on a durable engine")
	}
	for i := 0; i < 3; i++ {
		id := e.NextDocID()
		texts[id] = storeDocText(id, lemmas)
		if err := e.AddDocuments([]Document{{ID: id, Text: texts[id]}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DeleteDocuments([]int{3, 21}); err != nil {
		t.Fatal(err)
	}
	delete(texts, 3)
	delete(texts, 21)
	st, ok := e.WALStatus()
	if !ok || st.Seq != 4 || st.CheckpointSeq != 0 || st.OpsSinceCheckpoint != 4 {
		t.Fatalf("WALStatus = %+v, want seq 4 over checkpoint 0", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.AddDocuments([]Document{{ID: e.NextDocID(), Text: "x"}}); err == nil {
		t.Fatal("update accepted after Close")
	}

	// A crash mid-checkpoint leaves a snapshot temp file behind;
	// recovery must sweep it (nothing else ever does).
	orphan := filepath.Join(dir, "checkpoint-123.tmp")
	if err := os.WriteFile(orphan, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer r.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("recovery left the orphaned checkpoint temp file behind (%v)", err)
	}
	rst, ok := r.WALStatus()
	if !ok || rst.Seq != 4 {
		t.Fatalf("recovered WALStatus = %+v, want seq 4", rst)
	}
	// The replayed tail seeds the checkpoint-trigger counters: a
	// crash-looping deployment must still cross its thresholds.
	if rst.OpsSinceCheckpoint != 4 || rst.BytesSinceCheckpoint == 0 {
		t.Fatalf("recovered counters not seeded from the replayed tail: %+v", rst)
	}
	assertCorpusEquals(t, r, texts)
	// The recovered engine journals onward.
	id := r.NextDocID()
	texts[id] = storeDocText(id, lemmas)
	if err := r.AddDocuments([]Document{{ID: id, Text: texts[id]}}); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.WALStatus(); st.Seq != 5 {
		t.Fatalf("recovered engine journaled to seq %d, want 5", st.Seq)
	}
}

// assertCorpusEquals sweeps every assigned id: live documents read
// back their exact text, absent ids error, and a private search agrees
// with the plaintext ranking on the recovered corpus.
func assertCorpusEquals(t testing.TB, e *Engine, texts map[int]string) {
	t.Helper()
	live := 0
	for id := 0; id < e.NextDocID(); id++ {
		want, ok := texts[id]
		got, err := e.Document(id)
		if !ok {
			if err == nil {
				t.Fatalf("doc %d readable, want deleted", id)
			}
			continue
		}
		live++
		if err != nil || string(got) != want {
			t.Fatalf("doc %d = %q (%v), want %q", id, got, err, want)
		}
	}
	if live != e.NumDocs() {
		t.Fatalf("NumDocs %d, ledger has %d live", e.NumDocs(), live)
	}
	c, err := e.NewClient(detrand.New("durable-check"))
	if err != nil {
		t.Fatal(err)
	}
	lemmas := miniLemmas()
	q := lemmas[1] + " " + lemmas[6]
	private, err := c.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.PlaintextSearch(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The private candidate set includes zero-score decoy matches the
	// plaintext ranking never surfaces; Claim 1 is about the scored
	// results.
	var scored []Result
	for _, r := range private {
		if r.Score > 0 {
			scored = append(scored, r)
		}
	}
	if fmt.Sprint(scored) != fmt.Sprint(plain) {
		t.Fatalf("recovered engine breaks Claim 1: private %v, plaintext %v", scored, plain)
	}
}

// TestCheckpointRotatesAndRetires: Checkpoint writes the snapshot,
// rotates the log, retires covered files, and recovery afterwards
// replays nothing.
func TestCheckpointRotatesAndRetires(t *testing.T) {
	dir := t.TempDir()
	e, texts := durableStoreWorld(t, dir, 20, 32)
	defer e.Close()
	lemmas := miniLemmas()
	for i := 0; i < 3; i++ {
		id := e.NextDocID()
		texts[id] = storeDocText(id, lemmas)
		if err := e.AddDocuments([]Document{{ID: id, Text: texts[id]}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st, _ := e.WALStatus()
	if st.CheckpointSeq != 3 || st.OpsSinceCheckpoint != 0 {
		t.Fatalf("after checkpoint: %+v", st)
	}
	// Old checkpoint-0 and wal-0 are retired; only seq-3 files remain.
	names := dirNames(t, dir)
	want := []string{"checkpoint-0000000000000003.bin", "wal-0000000000000003.log"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("dir after checkpoint = %v, want %v", names, want)
	}
	// Checkpoint with nothing new is a no-op.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if names2 := dirNames(t, dir); fmt.Sprint(names2) != fmt.Sprint(want) {
		t.Fatalf("idle checkpoint changed the dir: %v", names2)
	}
	r, err := OpenDurable(copyDurableDir(t, dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	assertCorpusEquals(t, r, texts)
}

func dirNames(t testing.TB, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// TestEnableDurabilityOnLoadedEngine: the -load + -data-dir server
// path — a plain engine file becomes durable after the fact.
func TestEnableDurabilityOnLoadedEngine(t *testing.T) {
	e, _, texts := storeWorld(t, 20, 32)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := loaded.EnableDurability(durableOpts(dir)); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	defer loaded.Close()
	if err := loaded.EnableDurability(durableOpts(t.TempDir())); err == nil {
		t.Fatal("double EnableDurability accepted")
	}
	lemmas := miniLemmas()
	id := loaded.NextDocID()
	texts[id] = storeDocText(id, lemmas)
	if err := loaded.AddDocuments([]Document{{ID: id, Text: texts[id]}}); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDurable(copyDurableDir(t, dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	assertCorpusEquals(t, r, texts)
	// The dir now holds state: a fresh engine must refuse it, and
	// HasDurableState must see it.
	if has, err := HasDurableState(dir); err != nil || !has {
		t.Fatalf("HasDurableState = %v, %v", has, err)
	}
	docs := make([]Document, 20)
	for i := range docs {
		docs[i] = Document{ID: i, Text: storeDocText(i, lemmas)}
	}
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.Durability = durableOpts(dir)
	if _, err := NewEngine(MiniLexicon(), docs, opts); err == nil ||
		!strings.Contains(err.Error(), "OpenDurable") {
		t.Fatalf("NewEngine over existing durable state: %v", err)
	}
}

// TestOpenDurableValidation: missing state and bad policies fail with
// clean errors.
func TestOpenDurableValidation(t *testing.T) {
	if _, err := OpenDurable(t.TempDir(), Options{}); err == nil {
		t.Fatal("OpenDurable on an empty dir succeeded")
	}
	var opts Options
	opts.Durability.Fsync = FsyncPolicy(9)
	if _, err := OpenDurable(t.TempDir(), opts); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
	o := DefaultOptions()
	o.Durability = Durability{Dir: "x", CheckpointEveryOps: -2}
	if err := o.validate(); err == nil {
		t.Fatal("CheckpointEveryOps -2 validated")
	}
	o.Durability = Durability{Dir: "x", FsyncEvery: -time.Second}
	if err := o.validate(); err == nil {
		t.Fatal("negative FsyncEvery validated")
	}
	e, _ := liveTestEngine(t, 0)
	if err := e.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on an in-memory engine succeeded")
	}
	if _, ok := e.WALStatus(); ok {
		t.Fatal("WALStatus ok on an in-memory engine")
	}
	if e.Durable() {
		t.Fatal("in-memory engine claims durability")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close on an in-memory engine: %v", err)
	}
}

// TestSaveRacesAddCapturesConsistentSeq is the regression test for the
// checkpoint capture: the index snapshot, store snapshot and journal
// position are read under ONE updateMu hold, so a checkpoint taken
// while AddDocuments runs concurrently can never be one batch out of
// step with its named sequence — which recovery would surface as a
// double-applied or dropped batch (the dense-id check makes that loud).
// Run with -race.
func TestSaveRacesAddCapturesConsistentSeq(t *testing.T) {
	dir := t.TempDir()
	e, texts := durableStoreWorld(t, dir, 20, 32)
	lemmas := miniLemmas()
	var mu sync.Mutex // guards texts

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // continuous small adds
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := e.NextDocID()
			txt := storeDocText(id, lemmas)
			mu.Lock()
			texts[id] = txt
			mu.Unlock()
			if err := e.AddDocuments([]Document{{ID: id, Text: txt}}); err != nil {
				t.Errorf("concurrent add: %v", err)
				return
			}
			// The options struct is replaced under updateMu; checkpoints
			// must serialize the header from their captured copy, never
			// from live e.opts (-race regression).
			if err := e.ConfigureMergePolicy(8); err != nil {
				t.Errorf("concurrent merge-policy configure: %v", err)
				return
			}
		}
	}()
	var saved bytes.Buffer
	for i := 0; i < 8; i++ {
		if err := e.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		// Engine.Save during active WAL operation shares the same
		// capture; it must stay serveable too.
		saved.Reset()
		if err := e.Save(&saved); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		if _, err := LoadEngine(bytes.NewReader(saved.Bytes())); err != nil {
			t.Fatalf("save %d does not load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery from the final directory must replay cleanly onto the
	// last checkpoint — any capture/seq skew would break the dense-id
	// continuation and fail here.
	r, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("OpenDurable after racing checkpoints: %v", err)
	}
	defer r.Close()
	mu.Lock()
	defer mu.Unlock()
	assertCorpusEquals(t, r, texts)
}

// Package embellish is a Go implementation of the privacy-preserving
// text-search system of Pang, Ding and Xiao, "Embellishing Text Search
// Queries To Protect User Privacy" (PVLDB 3(1), VLDB 2010).
//
// # The problem
//
// A similarity text search engine must see query terms to rank documents
// from its inverted index, so it can profile its users. Two signals make
// naive countermeasures (throwing random cover terms into queries)
// ineffective: semantically related terms in one query point to a common
// topic, and recurring high-specificity terms across a session betray a
// sustained interest.
//
// # The solution
//
// The library embellishes each query with decoy terms drawn from
// precomputed buckets. Buckets group dictionary terms that are
// approximately equal in specificity (shortest hypernym path to a root
// of the lexical hierarchy) but semantically diverse, so a genuine term
// always travels with decoys that are as specific and as mutually
// related as itself — plausible alternative topics. The accompanying
// private retrieval (PR) scheme attaches a Benaloh additively
// homomorphic encryption of 1 (genuine) or 0 (decoy) to every query
// term; the engine accumulates encrypted relevance scores over ALL query
// terms without learning which were genuine, yet decoys contribute
// nothing to the decrypted scores, so ranking quality is exactly that of
// the plaintext engine (Claim 1 of the paper).
//
// # Usage
//
// Build an Engine over a lexicon and a document collection, derive a
// Client (which generates the user's key pair), and search:
//
//	lex := embellish.MiniLexicon()
//	engine, _ := embellish.NewEngine(lex, docs, embellish.DefaultOptions())
//	client, _ := engine.NewClient(nil)
//	res, _ := client.Search("osteosarcoma radiation therapy", 10)
//
// The response's ranking equals what a non-private engine would return
// for the same genuine terms, while the engine observed only the
// embellished term set. See the examples/ directory for complete
// programs, and internal/eval for the harness that regenerates every
// figure of the paper's evaluation.
package embellish

package embellish

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"embellish/internal/bucket"
	"embellish/internal/core"
	"embellish/internal/docstore"
	"embellish/internal/index"
	"embellish/internal/textproc"
	"embellish/internal/vbyte"
	"embellish/internal/wordnet"
)

// Engine persistence bundles the build artifacts — lexicon, live
// segmented index, bucket organization and (optionally) the PIR
// document store — into one file, so a deployment indexes its corpus
// once and both endpoints load the same organization (the protocol
// requires client and server to agree on it exactly).
//
// Version 3 (written by Save): magic "EENG" | version | options |
// lexicon section | organization section | quantization scale f64 |
// next doc id u32 | segment count u32 | one length-prefixed section per
// segment | tombstone section | doc-store section (an absent marker
// when the engine only ranks). Every section is self-checksummed by
// its own codec, so a segment corrupted on disk is caught
// independently of its neighbors.
//
// Version 2 (the pre-retrieval layout, identical up to and including
// the tombstone section) still loads, as an engine without a document
// store; saveV2 can still write it, dropping any store. Version 1 (the
// legacy single-index layout: lexicon | index | organization) also
// still loads, as a live set of one segment with no tombstones; saveV1
// can still write it for engines in that state.

const (
	engineMagic   = "EENG"
	engineVersion = 3

	// maxSaneSegments bounds the attacker-controlled segment count
	// during load.
	maxSaneSegments = 1 << 16
)

// Save serializes the engine, capturing one consistent snapshot of the
// live index — and, when present, the document store — even while
// updates continue. The client key pair is NOT part of the engine
// (keys belong to users); only public artifacts are written.
func (e *Engine) Save(w io.Writer) error {
	return e.save(w, engineVersion)
}

// saveV2 writes the pre-retrieval format, readable by deployments that
// predate the document store; any store is dropped. Kept unexported:
// the compat path must stay testable, and tests are the writer of
// record for v2 fixtures.
func (e *Engine) saveV2(w io.Writer) error {
	return e.save(w, 2)
}

// engineState is one consistent captured state of the engine: the
// index snapshot, the document-store snapshot, and — on durable
// engines — the write-ahead-log position the pair corresponds to.
type engineState struct {
	snap  *index.Snapshot
	store *docstore.Snapshot
	// opts is the options struct as of the capture. The header is
	// serialized from this copy, never from live e.opts — a background
	// checkpoint races ConfigureMergePolicy/ConfigureExecution, which
	// replace e.opts under updateMu.
	opts Options
	// seq is the last journaled operation folded into snap/store; 0 on
	// in-memory engines. Capturing it in the SAME lock hold as the
	// snapshots is what makes checkpoints sound: a seq read in a
	// separate acquisition could race a concurrent AddDocuments and
	// name a state one batch away from the snapshots, making recovery
	// double-apply or drop that batch.
	seq uint64
}

// captureStateLocked captures the engine state; the caller holds
// updateMu.
func (e *Engine) captureStateLocked() engineState {
	st := engineState{snap: e.live.Snapshot(), opts: e.opts}
	if e.store != nil {
		st.store = e.store.Snapshot()
	}
	if e.wal != nil {
		st.seq = e.wal.seq
	}
	return st
}

func (e *Engine) save(w io.Writer, version byte) error {
	// The index and store snapshots are captured under updateMu so the
	// saved pair reflects one point in the update history (each is
	// individually immutable, but a writer landing between two lock-free
	// captures would desynchronize their document counts).
	e.updateMu.Lock()
	st := e.captureStateLocked()
	e.updateMu.Unlock()
	return e.writeState(w, version, st)
}

// writeState serializes one captured state in the given format
// version. Shared by Save and the durability checkpoints.
func (e *Engine) writeState(w io.Writer, version byte, st engineState) error {
	snap, store := st.snap, st.store
	// Never write a file the loader would refuse: with merging disabled
	// a long-lived engine could exceed the load-side segment bound.
	if len(snap.Segs) > maxSaneSegments {
		return fmt.Errorf("embellish: %d segments exceed the loadable bound %d; Compact before saving",
			len(snap.Segs), maxSaneSegments)
	}
	if err := writeEngineHeader(w, version, st.opts); err != nil {
		return err
	}
	if err := writeSection(w, e.lex.db); err != nil {
		return err
	}
	if err := writeSection(w, e.org); err != nil {
		return err
	}
	var fixed [16]byte
	binary.LittleEndian.PutUint64(fixed[0:], math.Float64bits(e.live.Scale()))
	binary.LittleEndian.PutUint32(fixed[8:], uint32(snap.NextDoc))
	binary.LittleEndian.PutUint32(fixed[12:], uint32(len(snap.Segs)))
	if _, err := w.Write(fixed[:]); err != nil {
		return err
	}
	for _, seg := range snap.Segs {
		if err := writeSection(w, seg); err != nil {
			return err
		}
	}
	if err := writeSection(w, tombstonesWriter{ids: snap.Tombs.DocIDs()}); err != nil {
		return err
	}
	if version < 3 {
		return nil
	}
	return writeSection(w, docStoreSection{sn: store})
}

// docStoreSection adapts the docstore codec to the section writer; a
// nil snapshot writes the absent marker.
type docStoreSection struct{ sn *docstore.Snapshot }

func (d docStoreSection) WriteTo(w io.Writer) (int64, error) { return docstore.Write(w, d.sn) }

// saveV1 writes the legacy single-index format, readable by pre-live
// deployments. It refuses engines whose live state the format cannot
// express (more than one segment, or tombstones); Compact first, unless
// documents were deleted — deletions make ids sparse, which v1 cannot
// carry. Kept unexported: the compat path must stay testable, and tests
// are the writer of record for v1 fixtures.
func (e *Engine) saveV1(w io.Writer) error {
	snap := e.live.Snapshot()
	if len(snap.Segs) != 1 || snap.Tombs.Count() != 0 {
		return fmt.Errorf("embellish: v1 format cannot express %d segments with %d deletions",
			len(snap.Segs), snap.Tombs.Count())
	}
	if err := writeEngineHeader(w, 1, e.opts); err != nil {
		return err
	}
	for _, section := range []io.WriterTo{e.lex.db, snap.Segs[0], e.org} {
		if err := writeSection(w, section); err != nil {
			return err
		}
	}
	return nil
}

// writeEngineHeader writes the magic, version and options block shared
// by all format versions, from a captured options copy.
func writeEngineHeader(w io.Writer, version byte, o Options) error {
	if _, err := io.WriteString(w, engineMagic); err != nil {
		return err
	}
	header := []byte{
		version,
		boolByte(o.Stopwords),
		byte(o.Scoring),
	}
	if _, err := w.Write(header); err != nil {
		return err
	}
	var opts [20]byte
	binary.LittleEndian.PutUint32(opts[0:], uint32(o.BucketSize))
	binary.LittleEndian.PutUint32(opts[4:], uint32(o.SegmentSize))
	binary.LittleEndian.PutUint32(opts[8:], uint32(o.KeyBits))
	binary.LittleEndian.PutUint32(opts[12:], uint32(o.ScoreSpace))
	binary.LittleEndian.PutUint32(opts[16:], uint32(o.QuantLevels))
	_, err := w.Write(opts[:])
	return err
}

// LoadEngine deserializes an engine written by Save (version 2) or by a
// pre-live deployment (version 1, loaded as a single segment). The
// loaded engine serves queries — and accepts online updates —
// immediately; clients are created per user as usual.
func LoadEngine(r io.Reader) (*Engine, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("embellish: reading engine magic: %w", err)
	}
	if string(magic[:]) != engineMagic {
		return nil, errors.New("embellish: not an engine file")
	}
	var header [3]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err
	}
	version := header[0]
	if version < 1 || version > engineVersion {
		return nil, fmt.Errorf("embellish: unsupported engine version %d", version)
	}
	var opts Options
	opts.Stopwords = header[1] != 0
	opts.Scoring = Scoring(header[2])
	var fixed [20]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, err
	}
	opts.BucketSize = int(binary.LittleEndian.Uint32(fixed[0:]))
	opts.SegmentSize = int(binary.LittleEndian.Uint32(fixed[4:]))
	opts.KeyBits = int(binary.LittleEndian.Uint32(fixed[8:]))
	opts.ScoreSpace = int(binary.LittleEndian.Uint32(fixed[12:]))
	opts.QuantLevels = int(binary.LittleEndian.Uint32(fixed[16:]))
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("embellish: engine file options: %w", err)
	}

	db, err := readSection(r, func(sr io.Reader) (*wordnet.Database, error) {
		return wordnet.ReadDatabase(sr)
	})
	if err != nil {
		return nil, fmt.Errorf("embellish: lexicon section: %w", err)
	}

	var org *bucket.Organization
	var live *index.Live
	var store *docstore.Store
	if version == 1 {
		ix, err := readSection(r, func(sr io.Reader) (*index.Index, error) {
			return index.ReadIndex(sr)
		})
		if err != nil {
			return nil, fmt.Errorf("embellish: index section: %w", err)
		}
		org, err = readSection(r, func(sr io.Reader) (*bucket.Organization, error) {
			return bucket.ReadOrganization(sr)
		})
		if err != nil {
			return nil, fmt.Errorf("embellish: organization section: %w", err)
		}
		live = index.NewLive(ix)
	} else {
		org, err = readSection(r, func(sr io.Reader) (*bucket.Organization, error) {
			return bucket.ReadOrganization(sr)
		})
		if err != nil {
			return nil, fmt.Errorf("embellish: organization section: %w", err)
		}
		var fixed2 [16]byte
		if _, err := io.ReadFull(r, fixed2[:]); err != nil {
			return nil, fmt.Errorf("embellish: live header: %w", err)
		}
		scale := math.Float64frombits(binary.LittleEndian.Uint64(fixed2[0:]))
		nextDoc := binary.LittleEndian.Uint32(fixed2[8:])
		nSegs := binary.LittleEndian.Uint32(fixed2[12:])
		if nSegs == 0 || nSegs > maxSaneSegments || nextDoc > 1<<31-1 {
			return nil, fmt.Errorf("embellish: implausible live header: %d segments, next doc %d", nSegs, nextDoc)
		}
		ixs := make([]*index.Index, nSegs)
		for i := range ixs {
			ixs[i], err = readSection(r, func(sr io.Reader) (*index.Index, error) {
				return index.ReadIndex(sr)
			})
			if err != nil {
				return nil, fmt.Errorf("embellish: segment %d: %w", i, err)
			}
		}
		deleted, err := readSection(r, readTombstonesSection)
		if err != nil {
			return nil, fmt.Errorf("embellish: tombstone section: %w", err)
		}
		live, err = index.NewLiveFromParts(ixs, deleted, index.DocID(nextDoc))
		if err != nil {
			return nil, fmt.Errorf("embellish: %w", err)
		}
		if live.Scale() != scale {
			return nil, fmt.Errorf("embellish: header scale %g disagrees with segment scale %g", scale, live.Scale())
		}
		if version >= 3 {
			store, err = readSection(r, docstore.Read)
			if err != nil {
				return nil, fmt.Errorf("embellish: doc-store section: %w", err)
			}
			if store != nil {
				sn := store.Snapshot()
				if sn.NumDocs() != int(nextDoc) {
					return nil, fmt.Errorf("embellish: doc store holds %d documents, index assigned %d",
						sn.NumDocs(), nextDoc)
				}
				// The store's Deleted flags must agree with the index
				// tombstones id by id: a crafted file desynchronizing them
				// would yield ranked-but-unfetchable documents, and a later
				// DeleteDocuments would fail halfway (index applied, store
				// refusing) — permanent inconsistency.
				tombs := live.Snapshot().Tombs
				for id := 0; id < int(nextDoc); id++ {
					ext, _ := sn.Extent(id)
					if ext.Deleted != tombs.Has(index.DocID(id)) {
						return nil, fmt.Errorf("embellish: doc store and index disagree on document %d's deletion", id)
					}
				}
			}
		}
	}
	live.SetMaxSegments(opts.maxSegments())
	if store != nil {
		// The store knobs travel with the store, not the options block:
		// a v2 file (or a store-less v3) loads with them unset.
		opts.StoreDocuments = true
		opts.BlockSize = store.BlockSize()
	}

	e := &Engine{
		opts:  opts,
		lex:   &Lexicon{db: db},
		live:  live,
		org:   org,
		store: store,
	}
	// Rebuild the derived pieces exactly as NewEngine does.
	e.analyzer = textproc.NewAnalyzer()
	if !opts.Stopwords {
		e.analyzer.Stopwords = nil
	}
	lemmas := make([]string, 0, db.NumTerms())
	for _, t := range db.AllTerms() {
		lemmas = append(lemmas, db.Lemma(t))
	}
	e.analyzer.Matcher = textproc.NewDictionaryMatcher(lemmas)
	for b := 0; b < org.NumBuckets(); b++ {
		for _, t := range org.Bucket(b) {
			e.searchable = append(e.searchable, t)
		}
	}
	e.server = core.NewLiveServer(live, org, db)
	e.applyExecution()
	return e, nil
}

// Tombstone section codec: magic "ETMB" | count vbyte | ids as vbyte
// deltas (first absolute, then gaps) | crc32 of everything before it.
const tombstoneMagic = "ETMB"

type tombstonesWriter struct{ ids []index.DocID }

func (tw tombstonesWriter) WriteTo(w io.Writer) (int64, error) {
	buf := []byte(tombstoneMagic)
	buf = vbyte.Append(buf, uint64(len(tw.ids)))
	prev := index.DocID(0)
	for i, d := range tw.ids {
		if i == 0 {
			buf = vbyte.Append(buf, uint64(d))
		} else {
			buf = vbyte.Append(buf, uint64(d-prev))
		}
		prev = d
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, tail[:]...)
	n, err := w.Write(buf)
	return int64(n), err
}

func readTombstonesSection(r io.Reader) ([]index.DocID, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(tombstoneMagic)+1+4 {
		return nil, errors.New("tombstone section too short")
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("tombstone checksum mismatch; file corrupt")
	}
	if string(payload[:len(tombstoneMagic)]) != tombstoneMagic {
		return nil, errors.New("bad tombstone magic")
	}
	payload = payload[len(tombstoneMagic):]
	count, used, err := vbyte.Decode(payload)
	// Each id costs at least one payload byte, so a count past the
	// remaining payload is forged — reject before allocating.
	if err != nil || count > 1<<31 || count > uint64(len(payload)) {
		return nil, errors.New("implausible tombstone count")
	}
	payload = payload[used:]
	ids := make([]index.DocID, count)
	cur := uint64(0)
	for i := range ids {
		v, used, err := vbyte.Decode(payload)
		if err != nil {
			return nil, fmt.Errorf("tombstone %d: %w", i, err)
		}
		payload = payload[used:]
		if i == 0 {
			cur = v
		} else {
			if v == 0 {
				return nil, errors.New("tombstone ids not strictly increasing")
			}
			cur += v
		}
		if cur > 1<<31-1 {
			return nil, errors.New("tombstone id out of range")
		}
		ids[i] = index.DocID(cur)
	}
	if len(payload) != 0 {
		return nil, errors.New("trailing bytes after tombstones")
	}
	return ids, nil
}

func writeSection(w io.Writer, wt io.WriterTo) error {
	// Buffer the section to learn its length (sections are in-memory
	// artifacts; their size is bounded by the corpus already held in
	// RAM).
	var buf countingBuffer
	if _, err := wt.WriteTo(&buf); err != nil {
		return err
	}
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], uint64(len(buf.data)))
	if _, err := w.Write(lenb[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.data)
	return err
}

func readSection[T any](r io.Reader, decode func(io.Reader) (T, error)) (T, error) {
	var zero T
	var lenb [8]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return zero, err
	}
	n := binary.LittleEndian.Uint64(lenb[:])
	if n > 1<<40 {
		return zero, errors.New("section implausibly large")
	}
	return decode(io.LimitReader(r, int64(n)))
}

type countingBuffer struct{ data []byte }

func (b *countingBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

package embellish

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"embellish/internal/bucket"
	"embellish/internal/core"
	"embellish/internal/index"
	"embellish/internal/textproc"
	"embellish/internal/wordnet"
)

// Engine persistence bundles the three build artifacts — lexicon,
// inverted index and bucket organization — into one file, so a
// deployment indexes its corpus once and both endpoints load the same
// organization (the protocol requires client and server to agree on it
// exactly). Format: magic "EENG" | version | options | three
// length-prefixed sections, each self-checksummed by its own codec.

const (
	engineMagic   = "EENG"
	engineVersion = 1
)

// Save serializes the engine. The client key pair is NOT part of the
// engine (keys belong to users); only public artifacts are written.
func (e *Engine) Save(w io.Writer) error {
	if _, err := io.WriteString(w, engineMagic); err != nil {
		return err
	}
	header := []byte{
		engineVersion,
		boolByte(e.opts.Stopwords),
		byte(e.opts.Scoring),
	}
	if _, err := w.Write(header); err != nil {
		return err
	}
	var opts [16]byte
	binary.LittleEndian.PutUint32(opts[0:], uint32(e.opts.BucketSize))
	binary.LittleEndian.PutUint32(opts[4:], uint32(e.opts.SegmentSize))
	binary.LittleEndian.PutUint32(opts[8:], uint32(e.opts.KeyBits))
	binary.LittleEndian.PutUint32(opts[12:], uint32(e.opts.ScoreSpace))
	if _, err := w.Write(opts[:]); err != nil {
		return err
	}
	var quant [4]byte
	binary.LittleEndian.PutUint32(quant[:], uint32(e.opts.QuantLevels))
	if _, err := w.Write(quant[:]); err != nil {
		return err
	}

	for _, section := range []io.WriterTo{e.lex.db, e.index, e.org} {
		if err := writeSection(w, section); err != nil {
			return err
		}
	}
	return nil
}

// LoadEngine deserializes an engine written by Save. The loaded engine
// serves queries immediately; clients are created per user as usual.
func LoadEngine(r io.Reader) (*Engine, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("embellish: reading engine magic: %w", err)
	}
	if string(magic[:]) != engineMagic {
		return nil, errors.New("embellish: not an engine file")
	}
	var header [3]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err
	}
	if header[0] != engineVersion {
		return nil, fmt.Errorf("embellish: unsupported engine version %d", header[0])
	}
	var opts Options
	opts.Stopwords = header[1] != 0
	opts.Scoring = Scoring(header[2])
	var fixed [20]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, err
	}
	opts.BucketSize = int(binary.LittleEndian.Uint32(fixed[0:]))
	opts.SegmentSize = int(binary.LittleEndian.Uint32(fixed[4:]))
	opts.KeyBits = int(binary.LittleEndian.Uint32(fixed[8:]))
	opts.ScoreSpace = int(binary.LittleEndian.Uint32(fixed[12:]))
	opts.QuantLevels = int(binary.LittleEndian.Uint32(fixed[16:]))
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("embellish: engine file options: %w", err)
	}

	db, err := readSection(r, func(sr io.Reader) (*wordnet.Database, error) {
		return wordnet.ReadDatabase(sr)
	})
	if err != nil {
		return nil, fmt.Errorf("embellish: lexicon section: %w", err)
	}
	ix, err := readSection(r, func(sr io.Reader) (*index.Index, error) {
		return index.ReadIndex(sr)
	})
	if err != nil {
		return nil, fmt.Errorf("embellish: index section: %w", err)
	}
	org, err := readSection(r, func(sr io.Reader) (*bucket.Organization, error) {
		return bucket.ReadOrganization(sr)
	})
	if err != nil {
		return nil, fmt.Errorf("embellish: organization section: %w", err)
	}

	e := &Engine{
		opts:  opts,
		lex:   &Lexicon{db: db},
		index: ix,
		org:   org,
	}
	// Rebuild the derived pieces exactly as NewEngine does.
	e.analyzer = textproc.NewAnalyzer()
	if !opts.Stopwords {
		e.analyzer.Stopwords = nil
	}
	lemmas := make([]string, 0, db.NumTerms())
	for _, t := range db.AllTerms() {
		lemmas = append(lemmas, db.Lemma(t))
	}
	e.analyzer.Matcher = textproc.NewDictionaryMatcher(lemmas)
	for b := 0; b < org.NumBuckets(); b++ {
		for _, t := range org.Bucket(b) {
			e.searchable = append(e.searchable, t)
		}
	}
	e.server = core.NewServer(ix, org, db)
	e.applyExecution()
	return e, nil
}

func writeSection(w io.Writer, wt io.WriterTo) error {
	// Buffer the section to learn its length (sections are in-memory
	// artifacts; their size is bounded by the corpus already held in
	// RAM).
	var buf countingBuffer
	if _, err := wt.WriteTo(&buf); err != nil {
		return err
	}
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], uint64(len(buf.data)))
	if _, err := w.Write(lenb[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.data)
	return err
}

func readSection[T any](r io.Reader, decode func(io.Reader) (T, error)) (T, error) {
	var zero T
	var lenb [8]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return zero, err
	}
	n := binary.LittleEndian.Uint64(lenb[:])
	if n > 1<<40 {
		return zero, errors.New("section implausibly large")
	}
	return decode(io.LimitReader(r, int64(n)))
}

type countingBuffer struct{ data []byte }

func (b *countingBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

package embellish

import (
	"encoding/binary"
	"fmt"
	"os"
	"testing"

	"embellish/internal/detrand"
	"embellish/internal/wal"
)

// The crash-point matrix: drive a scripted add/delete/checkpoint
// workload against a durable engine, then cut the journal at EVERY
// record boundary and at points inside every record, and require each
// cut to recover to exactly the state after some prefix of the
// operation log — never a torn half-state. Each recovered engine must
// serve byte-identical documents through the PIR path, and its private
// rankings must equal PlaintextSearch on the recovered corpus.

// ledgerState is the expected corpus after a given operation prefix:
// the live documents' exact text, and the id watermark. Assigned ids
// absent from texts are deleted and must error from every read path.
type ledgerState struct {
	texts   map[int]string
	nextDoc int
}

func snapshotLedger(texts map[int]string, nextDoc int) ledgerState {
	cp := make(map[int]string, len(texts))
	for id, txt := range texts {
		cp[id] = txt
	}
	return ledgerState{texts: cp, nextDoc: nextDoc}
}

// assertRecoveredState verifies a recovered engine against a ledger
// state: id watermark, every live document's bytes via direct read AND
// a private PIR fetch, errors for deleted ids, and Claim 1 (private
// ranking == plaintext ranking) on the recovered corpus.
func assertRecoveredState(t testing.TB, e *Engine, st ledgerState, pirFetch bool) {
	t.Helper()
	if e.NextDocID() != st.nextDoc {
		t.Fatalf("recovered NextDocID %d, ledger %d", e.NextDocID(), st.nextDoc)
	}
	assertCorpusEquals(t, e, st.texts)
	if !pirFetch {
		return
	}
	fc, err := e.NewClient(detrand.New("matrix-fetcher"))
	if err != nil {
		t.Fatal(err)
	}
	fetched := 0
	for id := 0; id < st.nextDoc && fetched < 2; id++ {
		want, live := st.texts[id]
		if !live {
			if _, _, err := fc.FetchDocuments([]int{id}); err == nil {
				t.Fatalf("deleted doc %d PIR-fetchable after recovery", id)
			}
			continue
		}
		got, _, err := fc.FetchDocuments([]int{id})
		if err != nil || string(got[0]) != want {
			t.Fatalf("recovered PIR fetch %d = %q (%v), want %q", id, got, err, want)
		}
		fetched++
	}
}

// matrixWorkload drives the scripted operation log and returns the
// per-sequence ledger plus the sequence of the mid-script checkpoint.
func matrixWorkload(t testing.TB, e *Engine, texts map[int]string) (ledger map[uint64]ledgerState, ckptSeq uint64) {
	t.Helper()
	lemmas := miniLemmas()
	ledger = map[uint64]ledgerState{0: snapshotLedger(texts, e.NextDocID())}
	seq := uint64(0)
	add := func(n int) {
		docs := make([]Document, n)
		for i := range docs {
			id := e.NextDocID() + i
			texts[id] = storeDocText(id, lemmas)
			docs[i] = Document{ID: id, Text: texts[id]}
		}
		if err := e.AddDocuments(docs); err != nil {
			t.Fatalf("op %d add: %v", seq+1, err)
		}
		seq++
		ledger[seq] = snapshotLedger(texts, e.NextDocID())
	}
	del := func(ids ...int) {
		if err := e.DeleteDocuments(ids); err != nil {
			t.Fatalf("op %d delete %v: %v", seq+1, ids, err)
		}
		for _, id := range ids {
			delete(texts, id)
		}
		seq++
		ledger[seq] = snapshotLedger(texts, e.NextDocID())
	}

	add(2)     // 1: docs 12, 13
	del(3)     // 2
	add(1)     // 3: doc 14
	del(13, 7) // 4
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("mid-script checkpoint: %v", err)
	}
	ckptSeq = seq
	add(2)  // 5: docs 15, 16
	del(15) // 6
	add(1)  // 7: doc 17
	del(0)  // 8

	if st, _ := e.WALStatus(); st.Seq != seq || st.CheckpointSeq != ckptSeq {
		t.Fatalf("workload WALStatus = %+v, want seq %d over checkpoint %d", st, seq, ckptSeq)
	}
	return ledger, ckptSeq
}

// logFrameEnds walks the journal's record framing (u32 len | body |
// u32 crc) and returns the offset just past each record.
func logFrameEnds(t testing.TB, data []byte) []int {
	t.Helper()
	var ends []int
	off := 13 // segment header
	for off < len(data) {
		if len(data)-off < 8 {
			t.Fatalf("completed log has a torn frame at %d", off)
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4 + bodyLen + 4
		if off > len(data) {
			t.Fatalf("completed log overruns at %d", off)
		}
		ends = append(ends, off)
	}
	return ends
}

func TestCrashPointMatrixRecovery(t *testing.T) {
	dir := t.TempDir()
	e, texts := durableStoreWorld(t, dir, 12, 32)
	ledger, ckptSeq := matrixWorkload(t, e, texts)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// After the mid-script checkpoint retired its predecessors, the dir
	// holds checkpoint-<ckptSeq> plus one journal segment carrying the
	// checkpoint marker and the tail operations.
	st, err := wal.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Logs) != 1 || st.Logs[0] != ckptSeq {
		t.Fatalf("dir logs = %v, want exactly [%d]", st.Logs, ckptSeq)
	}
	logPath := wal.LogPath(dir, ckptSeq)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	ends := logFrameEnds(t, data)

	// Cut points: inside the header, every record boundary, and several
	// offsets inside every record (just past the boundary, mid-record,
	// one byte short of complete).
	type cut struct {
		bytes  int
		expSeq uint64 // operations fully journaled before the cut
	}
	seqAt := func(records int) uint64 {
		// Record 0 is the checkpoint marker; operation k is record k.
		if records <= 1 {
			return ckptSeq
		}
		return ckptSeq + uint64(records-1)
	}
	var cuts []cut
	for _, b := range []int{0, 7, 13} {
		cuts = append(cuts, cut{b, ckptSeq})
	}
	prev := 13
	for i, end := range ends {
		for _, mid := range []int{prev + 1, (prev + end) / 2, end - 1} {
			if mid > prev && mid < end {
				cuts = append(cuts, cut{mid, seqAt(i)})
			}
		}
		cuts = append(cuts, cut{end, seqAt(i + 1)})
		prev = end
	}

	for _, c := range cuts {
		c := c
		t.Run(fmt.Sprintf("cut=%d", c.bytes), func(t *testing.T) {
			cutDir := copyDurableDir(t, dir)
			if err := os.Truncate(wal.LogPath(cutDir, ckptSeq), int64(c.bytes)); err != nil {
				t.Fatal(err)
			}
			r, err := OpenDurable(cutDir, Options{})
			if err != nil {
				t.Fatalf("recovery at cut %d: %v", c.bytes, err)
			}
			defer r.Close()
			rst, ok := r.WALStatus()
			if !ok || rst.Seq != c.expSeq {
				t.Fatalf("cut %d recovered to seq %d, want prefix %d", c.bytes, rst.Seq, c.expSeq)
			}
			state, ok := ledger[c.expSeq]
			if !ok {
				t.Fatalf("test bug: no ledger state for seq %d", c.expSeq)
			}
			// PIR-fetch verification on the full-boundary cuts; the
			// mid-record cuts recover to the same prefix states, so the
			// cheap sweep + Claim 1 check suffices there.
			assertRecoveredState(t, r, state, c.bytes == 13 || containsInt(ends, c.bytes))
		})
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestRecoverySpansLogChain reproduces a crash INSIDE Checkpoint —
// after the log rotation, before the snapshot rename — where recovery
// must chain the old checkpoint through BOTH journal segments.
func TestRecoverySpansLogChain(t *testing.T) {
	dir := t.TempDir()
	e, texts := durableStoreWorld(t, dir, 12, 32)
	lemmas := miniLemmas()
	addOne := func() {
		id := e.NextDocID()
		texts[id] = storeDocText(id, lemmas)
		if err := e.AddDocuments([]Document{{ID: id, Text: texts[id]}}); err != nil {
			t.Fatal(err)
		}
	}
	addOne() // op 1
	addOne() // op 2
	// Freeze the pre-checkpoint file set: checkpoint-0 + wal-0 (ops 1-2).
	preDir := copyDurableDir(t, dir)
	if err := e.Checkpoint(); err != nil { // rotates to wal-2
		t.Fatal(err)
	}
	addOne() // op 3, journaled to wal-2
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Splice the rotated segment into the frozen set WITHOUT
	// checkpoint-2: exactly the layout a crash between the rotation and
	// the snapshot rename leaves behind.
	seg, err := os.ReadFile(wal.LogPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal.LogPath(preDir, 2), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDurable(preDir, Options{})
	if err != nil {
		t.Fatalf("chained recovery: %v", err)
	}
	defer r.Close()
	if st, _ := r.WALStatus(); st.Seq != 3 || st.CheckpointSeq != 0 {
		t.Fatalf("chained recovery WALStatus = %+v, want seq 3 over checkpoint 0", st)
	}
	assertRecoveredState(t, r, snapshotLedger(texts, r.NextDocID()), true)

	// A GAP in the chain — the middle segment missing — must be a loud
	// error, never a silently shortened corpus.
	gapDir := copyDurableDir(t, preDir)
	if err := os.Remove(wal.LogPath(gapDir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(gapDir, Options{}); err == nil {
		t.Fatal("recovery with a missing journal segment succeeded")
	}

	// A garbage HEADER on the tail segment is the signature of a crash
	// during its creation (Create syncs header before use, but power
	// loss inside the window can persist the name with junk data):
	// recovery must tolerate it — the ops live in the earlier chain —
	// and a checkpoint through the NON-ROTATED path (the reopened
	// segment already starts at the captured seq) must still settle
	// the replay-debt counters.
	tornDir := copyDurableDir(t, preDir)
	if err := os.WriteFile(wal.LogPath(tornDir, 2), make([]byte, 9), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenDurable(tornDir, Options{})
	if err != nil {
		t.Fatalf("recovery with a half-born tail segment: %v", err)
	}
	defer r2.Close()
	st2, _ := r2.WALStatus()
	// wal-2's op 3 was never really created in this timeline; ops 1-2
	// from wal-0 are the journal.
	if st2.Seq != 2 || st2.OpsSinceCheckpoint != 2 {
		t.Fatalf("half-born-tail recovery WALStatus = %+v, want seq 2 debt 2", st2)
	}
	if err := r2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint over reopened segment: %v", err)
	}
	st2, _ = r2.WALStatus()
	if st2.CheckpointSeq != 2 || st2.OpsSinceCheckpoint != 0 || st2.BytesSinceCheckpoint != 0 {
		t.Fatalf("non-rotated checkpoint left stale counters: %+v", st2)
	}
}

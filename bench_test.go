package embellish

// One benchmark per figure of the paper's evaluation (Section 5). Each
// benchmark regenerates the corresponding figure's series through
// internal/eval and prints it once, so `go test -bench=.` both times the
// pipeline and emits the reproduced tables. The benchmarks run at a
// laptop-scale configuration; cmd/embellish-eval exposes flags to rerun
// any figure at larger scales (up to the paper's 82,115-synset /
// 172,961-document setting).

import (
	"sync"
	"testing"

	"embellish/internal/bucket"
	"embellish/internal/core"
	"embellish/internal/eval"
	"embellish/internal/wordnet"
)

var (
	benchOnce sync.Once
	benchEnv  *eval.Env
	benchErr  error

	printMu      sync.Mutex
	printedFig   = map[string]bool{}
	printedBench = map[string]bool{}
)

// benchConfig is the shared benchmark environment scale. PIR server work
// grows with inverted-list length × bucket size, so the corpus is kept
// moderate; shapes are stable across scales (see EXPERIMENTS.md).
func benchConfig() eval.Config {
	cfg := eval.DefaultConfig()
	cfg.Synsets = 2000
	cfg.NumDocs = 220
	cfg.MeanDocLen = 70
	cfg.KeyBits = 256
	cfg.Trials = 12
	cfg.QuerySize = 12
	return cfg
}

func benchEnvGet(b *testing.B) *eval.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = eval.NewEnv(benchConfig())
	})
	if benchErr != nil {
		b.Fatalf("environment: %v", benchErr)
	}
	return benchEnv
}

// emit prints a rendered figure once per process, keyed by figure ID.
func emit(b *testing.B, figs ...eval.Figure) {
	b.Helper()
	printMu.Lock()
	defer printMu.Unlock()
	for _, f := range figs {
		if printedFig[f.ID] {
			continue
		}
		printedFig[f.ID] = true
		b.Log("\n" + f.Render())
	}
}

func BenchmarkFigure2(b *testing.B) {
	e := benchEnvGet(b)
	var f eval.Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = e.Figure2()
	}
	emit(b, f)
}

func BenchmarkFigure5a(b *testing.B) {
	e := benchEnvGet(b)
	var f eval.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err = e.Figure5a(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, f)
}

func BenchmarkFigure5b(b *testing.B) {
	e := benchEnvGet(b)
	var f eval.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err = e.Figure5b(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, f)
}

func BenchmarkFigure6a(b *testing.B) {
	e := benchEnvGet(b)
	var f eval.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err = e.Figure6a(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, f)
}

func BenchmarkFigure6b(b *testing.B) {
	e := benchEnvGet(b)
	var f eval.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err = e.Figure6b(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, f)
}

// benchBktSzSweep is a reduced Figure 7 x-axis so a bench iteration
// stays in seconds; cmd/embellish-eval runs the full 2..24 sweep.
var benchBktSzSweep = []int{2, 8, 16}

func BenchmarkFigure7(b *testing.B) {
	e := benchEnvGet(b)
	var figs []eval.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err = e.Figure7(benchBktSzSweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, figs...)
}

// benchQuerySizeSweep is a reduced Figure 8 x-axis (full: 4..40).
var benchQuerySizeSweep = []int{4, 12, 24}

func BenchmarkFigure8(b *testing.B) {
	e := benchEnvGet(b)
	var figs []eval.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		figs, err = e.Figure8(benchQuerySizeSweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, figs...)
}

// The remaining benchmarks time the individual building blocks, so
// regressions in any substrate are visible without rerunning a whole
// figure.

func newBenchClient(b *testing.B, e *eval.Env, org *bucket.Organization) *core.Client {
	b.Helper()
	c := core.NewClient(org, e.PRKey, 1)
	c.CryptoRand = e.Rand
	return c
}

func newBenchServer(e *eval.Env, org *bucket.Organization) *core.Server {
	return core.NewServer(e.Index, org, e.DB)
}

// benchGenuine picks n evenly spaced searchable terms, deterministic
// across runs.
func benchGenuine(e *eval.Env, n int) []wordnet.TermID {
	out := make([]wordnet.TermID, 0, n)
	step := len(e.Searchable) / n
	for i := 0; i < n; i++ {
		out = append(out, e.Searchable[i*step])
	}
	return out
}

func BenchmarkEmbellishQuery(b *testing.B) {
	e := benchEnvGet(b)
	org, err := e.Organization(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	client := newBenchClient(b, e, org)
	genuine := benchGenuine(e, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.Embellish(genuine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerProcess(b *testing.B) {
	e := benchEnvGet(b)
	org, err := e.Organization(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	client := newBenchClient(b, e, org)
	server := newBenchServer(e, org)
	genuine := benchGenuine(e, 12)
	q, _, err := client.Embellish(genuine)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := server.Process(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPostFilter(b *testing.B) {
	e := benchEnvGet(b)
	org, err := e.Organization(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	client := newBenchClient(b, e, org)
	server := newBenchServer(e, org)
	q, _, err := client.Embellish(benchGenuine(e, 12))
	if err != nil {
		b.Fatal(err)
	}
	resp, _, err := server.Process(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.PostFilter(resp, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBucketGeneration(b *testing.B) {
	e := benchEnvGet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Organization(8, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerProcessParallel(b *testing.B) {
	e := benchEnvGet(b)
	org, err := e.Organization(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	client := newBenchClient(b, e, org)
	server := newBenchServer(e, org)
	q, _, err := client.Embellish(benchGenuine(e, 12))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := server.ProcessParallel(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigureRecall(b *testing.B) {
	e := benchEnvGet(b)
	var f eval.Figure
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err = e.FigureRecall([]int{1, 2, 4, 8}, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	emit(b, f)
}

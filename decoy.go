package embellish

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"embellish/internal/trackmenot"
	"embellish/internal/wire"
	"embellish/internal/wordnet"
)

// Decoy streaming: TrackMeNot-style ghost traffic layered ON TOP of
// bucket embellishment. Each genuine query travels inside a small
// burst of ghost queries — random searchable-term combinations,
// embellished exactly like genuine queries and framed as
// wire.TypeDecoyQuery (body byte-identical to TypeQuery, so captured
// frames are indistinguishable; the type byte exists for honest
// accounting and ground truth in experiments). The paper's Section 2.1
// criticism — random ghosts are statistically separable by term
// coherence — is exactly what the server's per-session risk audit
// measures live, which is the point: the decoy stream and the audit
// together reproduce the paper's ghost-cover experiment on a real
// connection.

// DecoyStreamConfig tunes a DecoyStream.
type DecoyStreamConfig struct {
	// GhostRate is the number of decoy queries sent per genuine query
	// (the per-session rate knob). 0 selects the TrackMeNot-style
	// default of 4; negative disables cover traffic (the stream then
	// behaves exactly like plain SearchRemote).
	GhostRate int
	// Seed fixes the ghost term choice and the genuine query's position
	// within each burst, for reproducible experiments.
	Seed int64
}

// DecoyStreamStats counts a stream's traffic.
type DecoyStreamStats struct {
	// Genuine counts genuine queries sent; Decoys the decoy frames
	// sent; Skipped the decoys dropped without being sent (context
	// cancelled mid-burst) or refused by the server (overload or
	// deadline sheds — genuine queries surface those errors instead).
	Genuine, Decoys, Skipped int64
}

// DecoyStream schedules decoy cover traffic around a client's remote
// queries on a live connection. Not safe for concurrent use: a stream
// belongs to one connection's request-response loop, like the Client
// it wraps.
type DecoyStream struct {
	c    *Client
	gen  *trackmenot.Generator
	rate int

	genuine atomic.Int64
	decoys  atomic.Int64
	skipped atomic.Int64
}

// NewDecoyStream builds a decoy scheduler over the client's searchable
// dictionary (every term of every bucket is ghost vocabulary — the
// ghosts must be embellishable, so they come from the organization).
func (c *Client) NewDecoyStream(cfg DecoyStreamConfig) (*DecoyStream, error) {
	org := c.world.org
	vocab := make([]wordnet.TermID, 0, org.Terms())
	for b := 0; b < org.NumBuckets(); b++ {
		vocab = append(vocab, org.Bucket(b)...)
	}
	gen, err := trackmenot.NewGenerator(vocab, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("embellish: decoy stream: %w", err)
	}
	rate := cfg.GhostRate
	if rate == 0 {
		rate = gen.GhostRate // the TrackMeNot-style default
	}
	if rate < 0 {
		rate = 0
	}
	gen.GhostRate = rate
	return &DecoyStream{c: c, gen: gen, rate: rate}, nil
}

// GhostRate reports the stream's decoys-per-genuine-query rate.
func (d *DecoyStream) GhostRate() int { return d.rate }

// SetGhostRate changes the decoys-per-genuine-query rate for
// subsequent searches; negative values clamp to 0 (no cover traffic).
func (d *DecoyStream) SetGhostRate(rate int) {
	if rate < 0 {
		rate = 0
	}
	d.rate = rate
	d.gen.GhostRate = rate
}

// Stats returns a snapshot of the stream's traffic counters.
func (d *DecoyStream) Stats() DecoyStreamStats {
	return DecoyStreamStats{
		Genuine: d.genuine.Load(),
		Decoys:  d.decoys.Load(),
		Skipped: d.skipped.Load(),
	}
}

// SearchRemote runs one private query against a remote engine inside a
// burst of GhostRate decoy queries: the burst order is random (seeded),
// every frame is embellished with the same client key, and the genuine
// query's results are returned. Decoy responses are read and discarded;
// a decoy refused by the server (overload, deadline) is counted skipped
// and the burst continues — cover traffic must never fail a real
// search. The context is checked between frames: once it expires,
// remaining decoys are skipped, and if the genuine query was not yet
// sent the search fails with the context's error.
func (d *DecoyStream) SearchRemote(ctx context.Context, conn io.ReadWriter, query string, k int) ([]Result, error) {
	genuine, skippedWords, err := d.c.genuineTerms(query)
	if err != nil {
		return nil, err
	}
	batch, genuineAt := d.gen.Stream(genuine)
	var results []Result
	for i, terms := range batch {
		isGenuine := i == genuineAt
		if err := ctx.Err(); err != nil {
			if isGenuine || i < genuineAt {
				// The genuine query has not gone out: skip its remaining
				// cover too and fail the search.
				d.skipped.Add(int64(len(batch) - i))
				return nil, err
			}
			d.skipped.Add(int64(len(batch) - i))
			return results, nil
		}
		inner, skippedIDs, err := d.c.inner.Embellish(terms)
		if err != nil {
			if isGenuine {
				return nil, err
			}
			d.skipped.Add(1)
			continue
		}
		if isGenuine && len(skippedIDs) > 0 && len(genuine) == len(skippedIDs) {
			return nil, fmt.Errorf("embellish: no query term is in the searchable dictionary (skipped: %v)", skippedWords)
		}
		writeErr := error(nil)
		if isGenuine {
			writeErr = wire.WriteQuery(conn, inner)
		} else {
			writeErr = wire.WriteQueryDecoy(conn, inner)
		}
		if writeErr != nil {
			return nil, fmt.Errorf("embellish: sending query: %w", writeErr)
		}
		typ, body, err := wire.ReadMessage(conn)
		if err != nil {
			return nil, fmt.Errorf("embellish: reading response: %w", err)
		}
		switch typ {
		case wire.TypeError:
			rerr := remoteError(body)
			if isGenuine {
				return nil, rerr
			}
			// A shed or refused decoy is skipped cover, not a failure —
			// but only for the transient refusals; a protocol error on a
			// frame we built means the session is broken.
			if errors.Is(rerr, ErrOverloaded) || errors.Is(rerr, ErrRemoteDeadline) {
				d.skipped.Add(1)
				continue
			}
			return nil, rerr
		case wire.TypeResponse:
		default:
			return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
		}
		if isGenuine {
			cands, _, err := wire.DecodeResponse(body)
			if err != nil {
				return nil, err
			}
			results, err = d.c.decodeCandidates(cands, k)
			if err != nil {
				return nil, err
			}
			d.genuine.Add(1)
		} else {
			d.decoys.Add(1)
		}
	}
	return results, nil
}

// genuineTerms runs the analyzer half of Embellish: the query's
// searchable term ids, plus the words that fell outside the
// dictionary. The decoy scheduler needs the terms BEFORE
// embellishment — ghost queries must match the genuine query's term
// count, not its embellished frame size.
func (c *Client) genuineTerms(query string) ([]wordnet.TermID, []string, error) {
	tokens := c.world.analyzer.Analyze(query)
	if len(tokens) == 0 {
		return nil, nil, errors.New("embellish: query has no indexable terms")
	}
	var genuine []wordnet.TermID
	var skipped []string
	for _, tok := range tokens {
		t, ok := c.world.lex.db.Lookup(tok)
		if !ok {
			skipped = append(skipped, tok)
			continue
		}
		genuine = append(genuine, t)
	}
	if len(genuine) == 0 {
		return nil, nil, fmt.Errorf("embellish: no query term is in the searchable dictionary (skipped: %v)", skipped)
	}
	return genuine, skipped, nil
}

// SendGhosts emits n decoy frames on the connection without a genuine
// query — idle-time cover traffic. Exposed for the load harness and
// tests; respects the context between frames.
func (d *DecoyStream) SendGhosts(ctx context.Context, conn io.ReadWriter, n, termsPer int) error {
	if termsPer < 1 {
		termsPer = 2
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			d.skipped.Add(int64(n - i))
			return err
		}
		inner, _, err := d.c.inner.Embellish(d.gen.Ghost(termsPer))
		if err != nil {
			d.skipped.Add(1)
			continue
		}
		if err := wire.WriteQueryDecoy(conn, inner); err != nil {
			return fmt.Errorf("embellish: sending decoy: %w", err)
		}
		typ, body, err := wire.ReadMessage(conn)
		if err != nil {
			return fmt.Errorf("embellish: reading decoy response: %w", err)
		}
		switch typ {
		case wire.TypeError:
			rerr := remoteError(body)
			if errors.Is(rerr, ErrOverloaded) || errors.Is(rerr, ErrRemoteDeadline) {
				d.skipped.Add(1)
				continue
			}
			return rerr
		case wire.TypeResponse:
			d.decoys.Add(1)
		default:
			return fmt.Errorf("embellish: unexpected message type %d", typ)
		}
	}
	return nil
}

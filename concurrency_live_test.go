package embellish

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"embellish/internal/detrand"
	"embellish/internal/wire"
)

// The search-during-update tests: queries run concurrently with
// AddDocuments / DeleteDocuments churn (and the background merges the
// churn triggers), and every returned ranking must equal the plaintext
// ranking of SOME corpus snapshot the engine passed through — the
// snapshot the query observed. The single mutator logs a Snapshot after
// every update it applies (plus the initial state), so by join time the
// log contains every distinct doc-set state; merge-only swaps change no
// scores, so a query that observed one still matches its pre-merge
// logged state.

// snapshotLog collects engine snapshots as the mutator publishes them.
type snapshotLog struct {
	mu    sync.Mutex
	snaps []*Snapshot
}

func (l *snapshotLog) add(s *Snapshot) {
	l.mu.Lock()
	l.snaps = append(l.snaps, s)
	l.mu.Unlock()
}

func (l *snapshotLog) all() []*Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Snapshot(nil), l.snaps...)
}

// matchesSomeSnapshot reports whether the private result equals the
// plaintext ranking of at least one logged snapshot.
func matchesSomeSnapshot(query string, got []Result, snaps []*Snapshot) bool {
	for _, sn := range snaps {
		want, err := sn.PlaintextSearch(query, 0)
		if err != nil {
			continue
		}
		if len(got) < len(want) {
			continue
		}
		ok := true
		for i := range want {
			if got[i] != want[i] {
				ok = false
				break
			}
		}
		for _, r := range got[len(want):] {
			if r.Score != 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// churn applies rounds of interleaved adds and deletes, logging a
// snapshot after each update. It is the only writer.
func churn(e *Engine, log *snapshotLog, rounds int) error {
	added := []int{}
	for i := 0; i < rounds; i++ {
		if i%3 == 2 && len(added) > 0 {
			victim := added[0]
			added = added[1:]
			if err := e.DeleteDocuments([]int{victim}); err != nil {
				return fmt.Errorf("churn delete %d: %v", victim, err)
			}
		} else {
			docs := moreDocs(e, 2, 40+i)
			if err := e.AddDocuments(docs); err != nil {
				return fmt.Errorf("churn add round %d: %v", i, err)
			}
			for _, d := range docs {
				added = append(added, d.ID)
			}
		}
		log.add(e.Snapshot())
	}
	return nil
}

// TestSearchDuringUpdatesLocal churns the corpus while concurrent
// local clients search, under the full concurrent pipeline (sharding,
// precomputation, worker pool) and an aggressive merge policy so
// merges race the queries too. Run with -race in CI.
func TestSearchDuringUpdatesLocal(t *testing.T) {
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.Shards = 2
	opts.PrecomputeWindow = -1
	opts.Parallelism = -1
	opts.MaxSegments = 3
	e, err := NewEngine(MiniLexicon(), demoDocs(t), opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	log := &snapshotLog{}
	log.add(e.Snapshot())
	queries := testQueries(e, 6)

	type outcome struct {
		query string
		got   []Result
	}
	var outcomes []outcome
	var outMu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := churn(e, log, 18); err != nil {
			errs <- err
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := e.NewClient(detrand.New(fmt.Sprintf("live-searcher-%d", g)))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 8; i++ {
				query := queries[(g+2*i)%len(queries)]
				got, err := c.Search(query, 0)
				if err != nil {
					errs <- fmt.Errorf("search %q: %v", query, err)
					return
				}
				outMu.Lock()
				outcomes = append(outcomes, outcome{query: query, got: got})
				outMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snaps := log.all()
	for _, oc := range outcomes {
		if !matchesSomeSnapshot(oc.query, oc.got, snaps) {
			t.Fatalf("query %q: ranking matches no corpus snapshot the engine passed through (%d snapshots)",
				oc.query, len(snaps))
		}
	}
}

// TestSearchDuringUpdatesTCP runs the same membership check over real
// TCP: the mutator drives AddDocumentsRemote / DeleteDocumentsRemote
// against an updates-enabled NetServer while remote clients search.
func TestSearchDuringUpdatesTCP(t *testing.T) {
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.Shards = 2
	opts.PrecomputeWindow = -1
	opts.MaxSegments = 3
	e, err := NewEngine(MiniLexicon(), demoDocs(t), opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	srv := e.NewNetServer(ServeConfig{AllowUpdates: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	addr := l.Addr().String()

	log := &snapshotLog{}
	log.add(e.Snapshot())
	queries := testQueries(e, 6)

	type outcome struct {
		query string
		got   []Result
	}
	var outcomes []outcome
	var outMu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Mutator: admin frames over its own connection, logging the shared
	// in-process engine's snapshot after each acknowledged update.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		added := []int{}
		for i := 0; i < 12; i++ {
			if i%3 == 2 && len(added) > 0 {
				victim := added[0]
				added = added[1:]
				if _, err := DeleteDocumentsRemote(conn, []int{victim}); err != nil {
					errs <- fmt.Errorf("remote delete %d: %v", victim, err)
					return
				}
			} else {
				docs := moreDocs(e, 2, 80+i)
				if _, err := AddDocumentsRemote(conn, docs); err != nil {
					errs <- fmt.Errorf("remote add round %d: %v", i, err)
					return
				}
				for _, d := range docs {
					added = append(added, d.ID)
				}
			}
			log.add(e.Snapshot())
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			c, err := e.NewClient(detrand.New(fmt.Sprintf("tcp-live-searcher-%d", g)))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 6; i++ {
				query := queries[(g+2*i)%len(queries)]
				got, err := c.SearchRemote(conn, query, 0)
				if err != nil {
					errs <- fmt.Errorf("remote search %q: %v", query, err)
					return
				}
				outMu.Lock()
				outcomes = append(outcomes, outcome{query: query, got: got})
				outMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snaps := log.all()
	for _, oc := range outcomes {
		if !matchesSomeSnapshot(oc.query, oc.got, snaps) {
			t.Fatalf("query %q: remote ranking matches no corpus snapshot (%d snapshots)", oc.query, len(snaps))
		}
	}
	if st := srv.Stats(); st.Updates != 12 {
		t.Fatalf("Stats.Updates = %d, want 12", st.Updates)
	}
}

// TestRemoteUpdatesDisabledByDefault checks a default NetServer refuses
// admin frames (opt-in gate) while continuing to serve queries.
func TestRemoteUpdatesDisabledByDefault(t *testing.T) {
	e, c := testEngine(t)
	srv := e.NewNetServer(ServeConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	docs := moreDocs(e, 1, 5)
	if _, err := AddDocumentsRemote(conn, docs); err == nil {
		t.Fatal("updates-disabled server accepted an add")
	}
	if _, err := DeleteDocumentsRemote(conn, []int{0}); err == nil {
		t.Fatal("updates-disabled server accepted a delete")
	}
	if e.NumDocs() != 120 {
		t.Fatalf("engine mutated through disabled gate: %d docs", e.NumDocs())
	}
	// The connection survives the refusals and still answers queries.
	query := testQueries(e, 1)[0]
	got, err := c.SearchRemote(conn, query, 10)
	if err != nil {
		t.Fatalf("query after refused admin: %v", err)
	}
	want, err := e.PlaintextSearch(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestRemoteAddBatchesAcrossFrames checks an ingest larger than one
// admin frame (wire.MaxAdminDocs) is split across frames and fully
// applied.
func TestRemoteAddBatchesAcrossFrames(t *testing.T) {
	e, _ := liveTestEngine(t, 0)
	srv := e.NewNetServer(ServeConfig{AllowUpdates: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Empty inputs are rejected client-side, never acked as zero state.
	if _, err := AddDocumentsRemote(conn, nil); err == nil {
		t.Fatal("empty remote add accepted")
	}
	if _, err := DeleteDocumentsRemote(conn, nil); err == nil {
		t.Fatal("empty remote delete accepted")
	}

	n := wire.MaxAdminDocs + 50
	base := e.NextDocID()
	docs := make([]Document, n)
	for i := range docs {
		docs[i] = Document{ID: base + i, Text: "batched ingest filler"}
	}
	st, err := AddDocumentsRemote(conn, docs)
	if err != nil {
		t.Fatalf("batched add: %v", err)
	}
	if st.LiveDocs != base+n {
		t.Fatalf("status LiveDocs = %d, want %d", st.LiveDocs, base+n)
	}
	if got := srv.Stats().Updates; got != 2 {
		t.Fatalf("Stats.Updates = %d, want 2 frames", got)
	}
	if e.NumDocs() != base+n {
		t.Fatalf("engine has %d docs, want %d", e.NumDocs(), base+n)
	}
}

package embellish

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"embellish/internal/docstore"
	"embellish/internal/pir"
	"embellish/internal/wire"
)

// Private document retrieval: the second stage of the paper's privacy
// story. Stage one (Embellish/Process/Decode) ranks without revealing
// the query; this file fetches the winning documents without revealing
// which ones won. The engine lays document bytes out into fixed-size
// PIR blocks (Options.StoreDocuments); the client maps each ranked doc
// id to its block range through the public block mapping and runs one
// Kushilevitz-Ostrovsky PIR execution per block, locally against the
// engine or remotely over the wire protocol (TypePIRParams /
// TypePIRQuery / TypePIRResponse, behind ServeConfig.AllowRetrieval).
//
// What the server observes: the number of PIR executions — i.e. the
// block count of each fetched document — and nothing else. Which
// blocks were touched is hidden by the quadratic-residuosity
// assumption, exactly as in Section 5.2's PIR baseline. The block
// layout itself is churn-stable (tombstoned documents are padded out,
// never compacted away), so fetch offsets do not leak corpus updates.

// StoresDocuments reports whether the engine holds a document store
// (Options.StoreDocuments at construction, or loaded from a version-3
// engine file) and can therefore serve document fetches.
func (e *Engine) StoresDocuments() bool { return e.store != nil }

// Document returns document id's stored bytes, read directly in the
// clear — the server-side/test path; remote users fetch privately with
// Client.FetchDocumentsRemote. It errors for unassigned ids, for
// tombstoned documents, and on engines without a document store.
func (e *Engine) Document(id int) ([]byte, error) {
	sn, err := e.storeSnapshot()
	if err != nil {
		return nil, err
	}
	b, err := sn.Document(id)
	if err != nil {
		return nil, fmt.Errorf("embellish: %w", err)
	}
	return b, nil
}

// Document returns document id's bytes as pinned by this snapshot: a
// document deleted after the snapshot was taken still reads, exactly
// like PlaintextSearch still ranks it.
func (s *Snapshot) Document(id int) ([]byte, error) {
	if s.store == nil {
		return nil, errNoStore
	}
	b, err := s.store.Document(id)
	if err != nil {
		return nil, fmt.Errorf("embellish: %w", err)
	}
	return b, nil
}

var errNoStore = errors.New("embellish: engine stores no documents (enable Options.StoreDocuments)")

// maxStoredDocBytes bounds a single stored document so the docstore's
// uint32 extents can never overflow; AddDocuments validates against it
// BEFORE mutating anything.
const maxStoredDocBytes = 1 << 30

func (e *Engine) storeSnapshot() (*docstore.Snapshot, error) {
	if e.store == nil {
		return nil, errNoStore
	}
	return e.store.Snapshot(), nil
}

// SetRetrievalKeyBits overrides the PIR modulus size for this client's
// document fetches. The default comes from the engine's
// Options.RetrievalKeyBits (falling back to KeyBits) — but that knob
// is not persisted, so clients of LOADED engines use this to pick
// their own security/latency point; the modulus is a per-client
// choice the server never constrains (beyond the wire-protocol
// ceiling). Must be called before the first fetch.
func (c *Client) SetRetrievalKeyBits(bits int) error {
	if bits < 64 {
		return fmt.Errorf("embellish: RetrievalKeyBits %d too small for PIR key generation", bits)
	}
	if c.fetchKey != nil {
		return errors.New("embellish: the PIR key is already generated; set the size before the first fetch")
	}
	c.fetchBits = bits
	return nil
}

// pirKey returns the client's PIR key, generating it on first use (key
// generation costs two primes, so clients that never fetch never pay).
func (c *Client) pirKey() (*pir.ClientKey, error) {
	if c.fetchKey == nil {
		bits := c.fetchBits
		if bits == 0 {
			bits = c.engine.opts.retrievalKeyBits()
		}
		key, err := pir.GenerateKey(c.inner.CryptoRand, bits)
		if err != nil {
			return nil, fmt.Errorf("embellish: PIR key generation: %w", err)
		}
		c.fetchKey = key
	}
	return c.fetchKey, nil
}

// pirTransport abstracts where the PIR server lives: in-process
// (localPIR) or across a connection (remotePIR). Params is fetched
// once per FetchDocuments call; Answer runs one protocol execution.
type pirTransport interface {
	Params() (docstore.Params, error)
	Answer(q *pir.Query) (*pir.Answer, error)
}

// localPIR serves fetches from one pinned store snapshot, so a
// multi-document fetch reads an internally consistent corpus state.
type localPIR struct{ sn *docstore.Snapshot }

func (l localPIR) Params() (docstore.Params, error) { return l.sn.Params(), nil }
func (l localPIR) Answer(q *pir.Query) (*pir.Answer, error) {
	ans, _, err := l.sn.Answer(q)
	return ans, err
}

// remotePIR speaks the wire protocol over one connection.
type remotePIR struct{ conn io.ReadWriter }

func (r remotePIR) Params() (docstore.Params, error) {
	if err := wire.WritePIRParamsRequest(r.conn); err != nil {
		return docstore.Params{}, fmt.Errorf("embellish: requesting PIR params: %w", err)
	}
	typ, body, err := wire.ReadMessage(r.conn)
	if err != nil {
		return docstore.Params{}, fmt.Errorf("embellish: reading PIR params: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return docstore.Params{}, fmt.Errorf("embellish: server error: %s", body)
	case wire.TypePIRParams:
	default:
		return docstore.Params{}, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	return wire.DecodePIRParams(body)
}

func (r remotePIR) Answer(q *pir.Query) (*pir.Answer, error) {
	if err := wire.WritePIRQuery(r.conn, q); err != nil {
		return nil, fmt.Errorf("embellish: sending PIR query: %w", err)
	}
	typ, body, err := wire.ReadMessage(r.conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading PIR answer: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, fmt.Errorf("embellish: server error: %s", body)
	case wire.TypePIRResponse:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	return wire.DecodePIRAnswer(body)
}

// FetchStats describes the cost of one FetchDocuments call, feeding
// the PIR-vs-plaintext cost comparison of the Section 5.2 experiments.
type FetchStats struct {
	// Runs is the number of PIR protocol executions (one per block).
	Runs int
	// QueryBytes and AnswerBytes total the protocol traffic.
	QueryBytes, AnswerBytes int
}

// FetchDocuments privately fetches the given documents from the
// engine's own store — the in-process mirror of FetchDocumentsRemote,
// running the identical PIR protocol so tests and benchmarks measure
// the real fetch path. Results align with ids. The whole call reads
// one pinned store snapshot.
func (c *Client) FetchDocuments(ids []int) ([][]byte, FetchStats, error) {
	sn, err := c.engine.storeSnapshot()
	if err != nil {
		return nil, FetchStats{}, err
	}
	return c.fetchVia(localPIR{sn: sn}, ids)
}

// FetchDocumentsRemote privately fetches the given documents from a
// remote engine over the wire protocol. The server must run with
// ServeConfig.AllowRetrieval and a document store; the connection can
// be reused for searches before and after, so one session typically
// ranks (SearchRemote) and then fetches the winners. The server
// observes only the number of blocks fetched, never which ones.
func (c *Client) FetchDocumentsRemote(conn io.ReadWriter, ids []int) ([][]byte, FetchStats, error) {
	return c.fetchVia(remotePIR{conn: conn}, ids)
}

// fetchVia runs the client side of the fetch protocol: obtain the
// block mapping, then one PIR execution per block of each document.
// Any unfetchable id (never assigned, or tombstoned) fails the whole
// call — the error names the id, and no partial results are returned.
func (c *Client) fetchVia(t pirTransport, ids []int) ([][]byte, FetchStats, error) {
	var st FetchStats
	if len(ids) == 0 {
		return nil, st, errors.New("embellish: no documents to fetch")
	}
	key, err := c.pirKey()
	if err != nil {
		return nil, st, err
	}
	params, err := t.Params()
	if err != nil {
		return nil, st, err
	}
	// Validate every id BEFORE the first (expensive) PIR run.
	for _, id := range ids {
		if id < 0 || id >= len(params.Exts) {
			return nil, st, fmt.Errorf("embellish: document %d does not exist", id)
		}
		if params.Exts[id].Deleted {
			return nil, st, fmt.Errorf("embellish: document %d is deleted", id)
		}
	}
	out := make([][]byte, len(ids))
	for i, id := range ids {
		ext := params.Exts[id]
		doc := make([]byte, 0, int(ext.Blocks)*params.BlockSize)
		for b := 0; b < int(ext.Blocks); b++ {
			q, err := key.NewQuery(c.inner.CryptoRand, params.NumBlocks, int(ext.First)+b)
			if err != nil {
				return nil, st, fmt.Errorf("embellish: document %d block %d: %w", id, b, err)
			}
			st.Runs++
			st.QueryBytes += key.QueryBytes(params.NumBlocks)
			ans, err := t.Answer(q)
			if err != nil {
				return nil, st, fmt.Errorf("embellish: document %d block %d: %w", id, b, err)
			}
			if len(ans.Gammas) != 8*params.BlockSize {
				return nil, st, fmt.Errorf("embellish: document %d block %d: answer has %d rows, want %d",
					id, b, len(ans.Gammas), 8*params.BlockSize)
			}
			st.AnswerBytes += key.AnswerBytes(len(ans.Gammas))
			doc = append(doc, pir.ColumnBytes(key.Decode(ans))[:params.BlockSize]...)
		}
		doc = doc[:ext.Length]
		// A document deleted between the mapping fetch and the last block
		// fetch decodes as (partially) zeroed blocks — the server zeroes
		// tombstoned blocks in place. The content checksum turns that
		// silent corruption into an error.
		if crc32.ChecksumIEEE(doc) != ext.Crc {
			return nil, st, fmt.Errorf("embellish: document %d bytes fail their checksum (deleted or corrupted mid-fetch)", id)
		}
		out[i] = doc
	}
	return out, st, nil
}

package embellish

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"embellish/internal/docstore"
	"embellish/internal/pir"
	"embellish/internal/wire"
)

// Private document retrieval: the second stage of the paper's privacy
// story. Stage one (Embellish/Process/Decode) ranks without revealing
// the query; this file fetches the winning documents without revealing
// which ones won. The engine lays document bytes out into fixed-size
// PIR blocks (Options.StoreDocuments); the client maps each ranked doc
// id to its block range through the public block mapping and runs one
// Kushilevitz-Ostrovsky PIR execution per block, locally against the
// engine or remotely over the wire protocol (TypePIRParams /
// TypePIRQuery / TypePIRResponse, behind ServeConfig.AllowRetrieval).
//
// What the server observes: the number of PIR executions — i.e. the
// block count of each fetched document — and nothing else. Which
// blocks were touched is hidden by the quadratic-residuosity
// assumption, exactly as in Section 5.2's PIR baseline. The block
// layout itself is churn-stable (tombstoned documents are padded out,
// never compacted away), so fetch offsets do not leak corpus updates.

// StoresDocuments reports whether the engine holds a document store
// (Options.StoreDocuments at construction, or loaded from a version-3
// engine file) and can therefore serve document fetches.
func (e *Engine) StoresDocuments() bool { return e.store != nil }

// Document returns document id's stored bytes, read directly in the
// clear — the server-side/test path; remote users fetch privately with
// Client.FetchDocumentsRemote. It errors for unassigned ids, for
// tombstoned documents, and on engines without a document store.
func (e *Engine) Document(id int) ([]byte, error) {
	sn, err := e.storeSnapshot()
	if err != nil {
		return nil, err
	}
	b, err := sn.Document(id)
	if err != nil {
		return nil, fmt.Errorf("embellish: %w", err)
	}
	return b, nil
}

// Document returns document id's bytes as pinned by this snapshot: a
// document deleted after the snapshot was taken still reads, exactly
// like PlaintextSearch still ranks it.
func (s *Snapshot) Document(id int) ([]byte, error) {
	if s.store == nil {
		return nil, errNoStore
	}
	b, err := s.store.Document(id)
	if err != nil {
		return nil, fmt.Errorf("embellish: %w", err)
	}
	return b, nil
}

var errNoStore = errors.New("embellish: engine stores no documents (enable Options.StoreDocuments)")

// maxStoredDocBytes bounds a single stored document so the docstore's
// uint32 extents can never overflow; AddDocuments validates against it
// BEFORE mutating anything.
const maxStoredDocBytes = 1 << 30

func (e *Engine) storeSnapshot() (*docstore.Snapshot, error) {
	if e.store == nil {
		return nil, errNoStore
	}
	return e.store.Snapshot(), nil
}

// SetRetrievalKeyBits overrides the PIR modulus size for this client's
// document fetches. The default comes from the engine's
// Options.RetrievalKeyBits (falling back to KeyBits) — but that knob
// is not persisted, so clients of LOADED engines use this to pick
// their own security/latency point; the modulus is a per-client
// choice the server never constrains (beyond the wire-protocol
// ceiling). Must be called before the first fetch.
func (c *Client) SetRetrievalKeyBits(bits int) error {
	if bits < 64 {
		return fmt.Errorf("embellish: RetrievalKeyBits %d too small for PIR key generation", bits)
	}
	if c.fetchKey != nil {
		return errors.New("embellish: the PIR key is already generated; set the size before the first fetch")
	}
	c.fetchBits = bits
	return nil
}

// pirKey returns the client's PIR key, generating it on first use (key
// generation costs two primes, so clients that never fetch never pay).
func (c *Client) pirKey() (*pir.ClientKey, error) {
	if c.fetchKey == nil {
		bits := c.fetchBits
		if bits == 0 {
			bits = c.world.fetchBits
		}
		key, err := pir.GenerateKey(c.inner.CryptoRand, bits)
		if err != nil {
			return nil, fmt.Errorf("embellish: PIR key generation: %w", err)
		}
		c.fetchKey = key
	}
	return c.fetchKey, nil
}

// DefaultFetchPipeline is the fetch-pipeline window applied when a
// client never calls SetFetchPipeline: up to this many block queries
// are in flight at once during a fetch.
const DefaultFetchPipeline = 8

// maxFetchPipeline bounds SetFetchPipeline: past this the window only
// buys memory pressure — batches are capped at wire.MaxPIRBatch
// queries (and by the frame byte budget) regardless of depth.
const maxFetchPipeline = 1024

// SetFetchPipeline sets this client's fetch-pipeline window: the
// approximate number of PIR block queries in flight at once during
// FetchDocuments / FetchDocumentsRemote. Depth 1 selects the
// sequential protocol — one TypePIRQuery round-trip per block, wire-
// compatible with servers predating the batch messages. Depths >= 2
// pipeline: query generation, server-side database scans and
// client-side answer decoding all overlap, and remote fetches pack
// queries into batch frames (TypePIRBatchQuery) so a k-block fetch
// costs ~k/depth round-trips instead of k. The protocol answers are
// identical at every depth; only the scheduling changes.
func (c *Client) SetFetchPipeline(depth int) error {
	if depth < 1 || depth > maxFetchPipeline {
		return fmt.Errorf("embellish: fetch pipeline depth %d out of range [1, %d]", depth, maxFetchPipeline)
	}
	c.fetchDepth = depth
	return nil
}

// pipelineDepth resolves the fetch-pipeline window.
func (c *Client) pipelineDepth() int {
	if c.fetchDepth == 0 {
		return DefaultFetchPipeline
	}
	return c.fetchDepth
}

// SetFetchRecursive opts this client's document fetches into the
// two-level recursive PIR protocol: each block query carries two
// selection vectors over a sqrt(n) x sqrt(n) grid instead of one flat
// vector over all n blocks, cutting per-query upload from n to at most
// 3*ceil(sqrt(n)) group elements at the cost of an answer that is
// 8*modBytes times larger. The answers decode to byte-identical
// documents either way.
//
// Local fetches use the recursive plan only while the engine's
// PIRRecursive knob allows it (Options.PIRRecursive /
// ConfigurePIRRecursive); otherwise they silently serve flat. Remote
// fetches send TypePIRRecursiveQuery frames and transparently retry
// the whole fetch through the flat protocol when the server refuses
// them (old server, or its knob set to -1).
func (c *Client) SetFetchRecursive(on bool) {
	c.fetchRecursive = on
}

// pirTransport abstracts where the PIR server lives: in-process
// (localPIR) or across a connection (remotePIR). Params is fetched
// once per FetchDocuments call; Run serves the protocol executions.
type pirTransport interface {
	Params() (docstore.Params, error)
	// Run consumes block queries from qs (closed by the caller when
	// generation ends) and calls deliver exactly once per consumed
	// query, in consumption order — the ordered-reassembly contract.
	// It returns after qs closes and every answer is delivered, or on
	// the first generation, serving, transport or delivery error.
	// Cancellation of ctx stops the run between (or, for in-process
	// serving, inside) protocol executions with ctx.Err().
	Run(ctx context.Context, qs <-chan *pir.Query, deliver func(*pir.Answer) error) error
	// RunRecursive is Run for two-level recursive queries, under the
	// same ordered-delivery contract. A transport whose server does not
	// speak the recursive protocol returns errRecursiveUnsupported
	// (wrapped) from the first execution, with the stream still
	// frame-aligned so the caller can retry flat.
	RunRecursive(ctx context.Context, qs <-chan *pir.RecursiveQuery, deliver func(*pir.Answer) error) error
}

// localPIR serves fetches from one pinned store snapshot, so a
// multi-document fetch reads an internally consistent corpus state.
// The pipeline overlap here is generation vs. serving: the fetch
// generator fills the query channel while Run multiplies. With
// amortize set (the engine's PIRBatchAmortize knob) and a non-
// sequential serving plan, Run gathers a whole document's block
// queries — and, across documents, up to wire.MaxPIRBatch — and
// serves each gathered batch in ONE pass over the store through
// answerPIRMultiCtx.
type localPIR struct {
	sn       *docstore.Snapshot
	workers  int
	amortize bool
}

func (l localPIR) Params() (docstore.Params, error) { return l.sn.Params(), nil }

func (l localPIR) Run(ctx context.Context, qs <-chan *pir.Query, deliver func(*pir.Answer) error) error {
	if l.amortize && l.workers != 0 {
		return l.runAmortized(ctx, qs, deliver)
	}
	for q := range qs {
		// Serving errors go back bare: fetchVia attaches the document
		// and block context (and the "embellish:" prefix) itself.
		ans, _, err := answerPIRCtx(ctx, l.sn, q, l.workers)
		if err != nil {
			return err
		}
		if err := deliver(ans); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// runAmortized is localPIR's one-pass batch mode: it collects queries
// until the generator closes the channel or the batch reaches the
// wire batch cap, then answers the whole batch in a single scan.
// Collection blocks on the generator — generation (residuosity draws)
// is orders of magnitude cheaper than serving (a full database pass),
// so waiting for a full batch costs microseconds and buys the scan
// sharing. The generator never waits on deliveries, so blocking here
// cannot deadlock. Local fetch queries all share one key and one
// block-count, satisfying the multi path's equal-width contract.
func (l localPIR) runAmortized(ctx context.Context, qs <-chan *pir.Query, deliver func(*pir.Answer) error) error {
	batch := make([]*pir.Query, 0, wire.MaxPIRBatch)
	serve := func() error {
		if len(batch) == 0 {
			return nil
		}
		answers, _, err := answerPIRMultiCtx(ctx, l.sn, batch, l.workers)
		if err != nil {
			return err
		}
		for _, ans := range answers {
			if err := deliver(ans); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for q := range qs {
		batch = append(batch, q)
		if len(batch) == wire.MaxPIRBatch {
			if err := serve(); err != nil {
				return err
			}
		}
	}
	if err := serve(); err != nil {
		return err
	}
	return ctx.Err()
}

// RunRecursive serves recursive fetches from the pinned snapshot.
// Recursive serving is batch-shaped from the start (the grid scan
// shares its one database pass across the batch exactly like the
// multi plan), so amortizing clients gather up to the wire batch cap
// before serving; without amortization each query is served alone,
// mirroring Run.
func (l localPIR) RunRecursive(ctx context.Context, qs <-chan *pir.RecursiveQuery, deliver func(*pir.Answer) error) error {
	batchMax := 1
	if l.amortize && l.workers != 0 {
		batchMax = wire.MaxPIRRecursiveBatch
	}
	batch := make([]*pir.RecursiveQuery, 0, batchMax)
	serve := func() error {
		if len(batch) == 0 {
			return nil
		}
		answers, _, err := answerPIRRecursiveCtx(ctx, l.sn, batch, l.workers)
		if err != nil {
			return err
		}
		for _, ans := range answers {
			if err := deliver(ans); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for q := range qs {
		batch = append(batch, q)
		if len(batch) == batchMax {
			if err := serve(); err != nil {
				return err
			}
		}
	}
	if err := serve(); err != nil {
		return err
	}
	return ctx.Err()
}

// remotePIR speaks the wire protocol over one connection: sequential
// TypePIRQuery round-trips at depth 1, streamed TypePIRBatchQuery /
// TypePIRBatchResponse frames at deeper windows.
type remotePIR struct {
	conn  io.ReadWriter
	depth int
	// amortize mirrors the client engine's PIRBatchAmortize knob: when
	// set, the pipelined writer waits for the generator to fill each
	// batch frame (after the slow-start probe), so the server sees the
	// full batch width its one-pass amortized scan needs.
	amortize bool
}

func (r remotePIR) Params() (docstore.Params, error) {
	if err := wire.WritePIRParamsRequest(r.conn); err != nil {
		return docstore.Params{}, fmt.Errorf("embellish: requesting PIR params: %w", err)
	}
	typ, body, err := wire.ReadMessage(r.conn)
	if err != nil {
		return docstore.Params{}, fmt.Errorf("embellish: reading PIR params: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return docstore.Params{}, remoteError(body)
	case wire.TypePIRParams:
	default:
		return docstore.Params{}, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	return wire.DecodePIRParams(body)
}

func (r remotePIR) Run(ctx context.Context, qs <-chan *pir.Query, deliver func(*pir.Answer) error) error {
	if r.depth <= 1 {
		return r.runSequential(ctx, qs, deliver)
	}
	return r.runPipelined(ctx, qs, deliver)
}

// runSequential is the depth-1 protocol: one synchronous TypePIRQuery
// round-trip per block, wire-compatible with pre-batch servers. The
// context is checked between round-trips — a cancelled fetch stops
// before committing the next query, leaving the stream frame-aligned
// and the connection reusable.
func (r remotePIR) runSequential(ctx context.Context, qs <-chan *pir.Query, deliver func(*pir.Answer) error) error {
	for q := range qs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := wire.WritePIRQuery(r.conn, q); err != nil {
			return fmt.Errorf("embellish: sending PIR query: %w", err)
		}
		typ, body, err := wire.ReadMessage(r.conn)
		if err != nil {
			return fmt.Errorf("embellish: reading PIR answer: %w", err)
		}
		switch typ {
		case wire.TypeError:
			return remoteError(body)
		case wire.TypePIRResponse:
		default:
			return fmt.Errorf("embellish: unexpected message type %d", typ)
		}
		ans, err := wire.DecodePIRAnswer(body)
		if err != nil {
			return err
		}
		if err := deliver(ans); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// maxPIRBatchFrameBytes budgets one batch frame well under the wire
// frame cap: a batch of b queries costs ~b·values·modBytes on the
// wire, so wide moduli over big stores must shrink the batch, not
// overflow the frame.
const maxPIRBatchFrameBytes = 16 << 20

// pirBatchLimit sizes one batch: half the pipeline window (so two
// batches keep the window full), capped by the wire batch limit and
// by the frame byte budget for queries of this shape.
func pirBatchLimit(depth, numValues, modBits int) int {
	limit := depth / 2
	if limit < 1 {
		limit = 1
	}
	if limit > wire.MaxPIRBatch {
		limit = wire.MaxPIRBatch
	}
	// Per-query wire cost: one length-prefixed group element per block
	// column (+ small vbyte overhead).
	perQuery := numValues*((modBits+7)/8+3) + 16
	if byBytes := maxPIRBatchFrameBytes / perQuery; byBytes < limit {
		limit = byBytes
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// runPipelined keeps a window of block queries in flight on one
// connection: a writer goroutine packs queries into TypePIRBatchQuery
// frames while this goroutine reads the streamed per-block answers
// back in order — so query generation, the server's database scans
// and the client's decoding all overlap, and round-trips amortize
// across the window.
//
// Failure handling preserves the connection where that is sound: on a
// delivery error (e.g. a document failing its checksum after a
// mid-fetch delete) the stream is still frame-aligned, so the
// remaining in-flight answers are drained and the connection stays
// reusable. Transport and protocol-level failures leave the stream in
// an undefined state — the caller must close the connection (which
// also unblocks the writer). In every case the writer goroutine exits
// once the connection is closed; it never outlives a successful or
// drained call.
func (r remotePIR) runPipelined(ctx context.Context, qs <-chan *pir.Query, deliver func(*pir.Answer) error) error {
	var (
		committed  atomic.Int64 // answer frames the server owes us (queries written)
		abortOnce  sync.Once
		abort      = make(chan struct{})
		werr       = make(chan error, 1)
		sizes      = make(chan int, 2) // written, not-yet-fully-read batches
		writerDone = make(chan struct{})
		commitPing = make(chan struct{}, 1) // wakes a draining reader per commit
		// firstOK is the slow-start green light: the writer holds off
		// on a second batch until the first answer frame proves the
		// server speaks the batch protocol, so a pre-batch server is
		// detected after exactly ONE exchanged frame and the sequential
		// fallback starts on an aligned stream.
		firstOK = make(chan struct{})
	)
	stop := func() { abortOnce.Do(func() { close(abort) }) }
	defer stop()
	go func() {
		defer close(writerDone)
		defer close(sizes)
		var batchMax int
		firstBatch := true
		for {
			first, ok := <-qs
			if !ok {
				return
			}
			select {
			case <-abort:
				return
			default:
			}
			if batchMax == 0 {
				batchMax = pirBatchLimit(r.depth, len(first.Values), first.N.BitLen())
			}
			batch := append(make([]*pir.Query, 0, batchMax), first)
			// The slow-start probe (and every batch when amortization is
			// off) takes whatever is already generated without waiting:
			// slow generators ship small batches rather than stalling the
			// window. After the probe, an amortizing client blocks on the
			// generator so each frame carries a full batch — the width the
			// server's one-pass scan amortizes over. Generation is far
			// cheaper than serving, and the previous batch's scan overlaps
			// the wait, so blocking costs latency only on the second frame.
		fill:
			for len(batch) < batchMax {
				if r.amortize && !firstBatch {
					select {
					case q, ok := <-qs:
						if !ok {
							break fill
						}
						batch = append(batch, q)
					case <-abort:
						return
					}
					continue
				}
				select {
				case q, ok := <-qs:
					if !ok {
						break fill
					}
					batch = append(batch, q)
				default:
					break fill
				}
			}
			if err := wire.WritePIRBatchQuery(r.conn, batch); err != nil {
				werr <- fmt.Errorf("embellish: sending PIR batch: %w", err)
				return
			}
			committed.Add(int64(len(batch)))
			select {
			case commitPing <- struct{}{}:
			default: // a pending ping already wakes the drainer
			}
			select {
			case sizes <- len(batch):
			case <-abort:
				return
			}
			if firstBatch {
				firstBatch = false
				select {
				case <-firstOK:
				case <-abort:
					return
				}
			}
		}
	}()

	consumed := 0
	greenLit := false
	for n := range sizes {
		if err := ctx.Err(); err != nil {
			// Cancelled between batches: stop the writer and drain the
			// answers the server still owes, so the stream stays
			// frame-aligned and the connection survives the abandon.
			stop()
			return r.drain(consumed, &committed, writerDone, commitPing, err)
		}
		for i := 0; i < n; i++ {
			typ, body, err := wire.ReadMessage(r.conn)
			if err != nil {
				return fmt.Errorf("embellish: reading PIR batch answer: %w", err)
			}
			consumed++
			if !greenLit {
				if typ == wire.TypeError && strings.HasPrefix(string(body), wire.UnknownTypeRefusal) {
					// The exact refusal pre-batch servers send for
					// type 12; the caller falls back to depth 1.
					return fmt.Errorf("%w: %s", errBatchUnsupported, body)
				}
				greenLit = true
				close(firstOK)
			}
			switch typ {
			case wire.TypeError:
				// The server aborted this batch partway; the remaining
				// frame accounting is unknowable, so the connection is
				// not reusable after this error.
				return remoteError(body)
			case wire.TypePIRBatchResponse:
			default:
				return fmt.Errorf("embellish: unexpected message type %d", typ)
			}
			idx, ans, err := wire.DecodePIRBatchAnswer(body)
			if err != nil {
				return err
			}
			if idx != i {
				return fmt.Errorf("embellish: batch answer %d arrived at position %d", idx, i)
			}
			if err := deliver(ans); err != nil {
				// Delivery failures (checksum, shape) leave the stream
				// frame-aligned: drain what is in flight so the
				// connection survives for the next search or fetch.
				stop()
				return r.drain(consumed, &committed, writerDone, commitPing, err)
			}
		}
	}
	select {
	case err := <-werr:
		return err
	default:
		return nil
	}
}

// drain consumes the answer frames still owed by the server after a
// delivery error, leaving the connection at a frame boundary. The
// writer has been told to stop; it may still commit the one batch it
// was writing, so drain tracks its committed count until it exits —
// woken by the per-commit ping, never polling. The original failure
// is always returned; if the connection breaks (or the server errors)
// mid-drain, the stream is left undefined and the caller should
// discard the connection.
func (r remotePIR) drain(consumed int, committed *atomic.Int64, writerDone, commitPing <-chan struct{}, failure error) error {
	for {
		if int64(consumed) < committed.Load() {
			typ, _, err := wire.ReadMessage(r.conn)
			if err != nil || typ == wire.TypeError {
				return failure
			}
			consumed++
			continue
		}
		select {
		case <-writerDone:
			if int64(consumed) == committed.Load() {
				return failure
			}
			// One more batch was committed as the writer exited; loop
			// to read it.
		case <-commitPing:
		}
	}
}

// recursiveBatchLimit sizes one TypePIRRecursiveQuery frame: the wire
// batch cap, shrunk by the frame byte budget for queries of this shape
// (values group elements per query — the two selection vectors).
func recursiveBatchLimit(values, modBits int) int {
	limit := wire.MaxPIRRecursiveBatch
	perQuery := values*((modBits+7)/8+3) + 16
	if byBytes := maxPIRBatchFrameBytes / perQuery; byBytes < limit {
		limit = byBytes
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// RunRecursive speaks the recursive protocol: batches of up to
// wire.MaxPIRRecursiveBatch queries per TypePIRRecursiveQuery frame,
// answered by that many index-checked TypePIRBatchResponse frames.
// Frames are synchronous — the answer stream is read to the end before
// the next frame is written — so a refusal (old server, or one with
// its PIRRecursive knob off) is detected after exactly one exchanged
// frame with the stream still aligned, and the caller retries flat.
// Collection blocks on the generator to fill each frame: recursive
// query generation costs sqrt(n) residuosity draws, orders of
// magnitude cheaper than the grid scan it feeds.
func (r remotePIR) RunRecursive(ctx context.Context, qs <-chan *pir.RecursiveQuery, deliver func(*pir.Answer) error) error {
	var batchMax int
	first := true
	batch := make([]*pir.RecursiveQuery, 0, wire.MaxPIRRecursiveBatch)
	serve := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := wire.WritePIRRecursiveQuery(r.conn, batch); err != nil {
			return fmt.Errorf("embellish: sending recursive PIR batch: %w", err)
		}
		for i := range batch {
			typ, body, err := wire.ReadMessage(r.conn)
			if err != nil {
				return fmt.Errorf("embellish: reading recursive PIR answer: %w", err)
			}
			if first {
				if typ == wire.TypeError && strings.HasPrefix(string(body), wire.UnknownTypeRefusal) {
					// The refusal both pre-recursive servers and a
					// disabled PIRRecursive knob send for type 22; the
					// caller falls back to the flat protocol.
					return fmt.Errorf("%w: %s", errRecursiveUnsupported, body)
				}
				first = false
			}
			switch typ {
			case wire.TypeError:
				return remoteError(body)
			case wire.TypePIRBatchResponse:
			default:
				return fmt.Errorf("embellish: unexpected message type %d", typ)
			}
			idx, ans, err := wire.DecodePIRBatchAnswer(body)
			if err != nil {
				return err
			}
			if idx != i {
				return fmt.Errorf("embellish: recursive answer %d arrived at position %d", idx, i)
			}
			if err := deliver(ans); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for q := range qs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if batchMax == 0 {
			batchMax = recursiveBatchLimit(len(q.Rows)+len(q.Cols), q.N.BitLen())
		}
		batch = append(batch, q)
		if len(batch) == batchMax {
			if err := serve(); err != nil {
				return err
			}
		}
	}
	if err := serve(); err != nil {
		return err
	}
	return ctx.Err()
}

// errRecursiveUnsupported marks a server that answered the first
// recursive frame with the "unexpected message type" refusal — either
// it predates the recursive protocol or its PIRRecursive knob is -1;
// the two are deliberately indistinguishable on the wire.
var errRecursiveUnsupported = errors.New("embellish: server does not speak recursive PIR fetches")

// FetchStats describes the cost of one FetchDocuments call, feeding
// the PIR-vs-plaintext cost comparison of the Section 5.2 experiments.
type FetchStats struct {
	// Runs is the number of PIR protocol executions (one per block).
	Runs int
	// QueryBytes and AnswerBytes total the protocol traffic.
	QueryBytes, AnswerBytes int
}

// FetchDocuments privately fetches the given documents from the
// engine's own store — the in-process mirror of FetchDocumentsRemote,
// running the identical PIR protocol so tests and benchmarks measure
// the real fetch path. Results align with ids. The whole call reads
// one pinned store snapshot; answers are served through the plan the
// engine's PIRWorkers knob selects, and query generation overlaps
// serving through the client's fetch pipeline (SetFetchPipeline).
func (c *Client) FetchDocuments(ids []int) ([][]byte, FetchStats, error) {
	return c.FetchDocumentsContext(context.Background(), ids)
}

// FetchDocumentsContext is FetchDocuments under a context: a cancelled
// or deadline-expired fetch stops its block scans mid-database (the
// serving plan checks ctx inside the multiplication loops) and returns
// an error satisfying errors.Is(err, ctx.Err()). No partial results
// are returned.
func (c *Client) FetchDocumentsContext(ctx context.Context, ids []int) ([][]byte, FetchStats, error) {
	if c.engine == nil {
		return nil, FetchStats{}, ErrRemoteOnly
	}
	sn, err := c.engine.storeSnapshot()
	if err != nil {
		return nil, FetchStats{}, err
	}
	// Local fetches honor BOTH sides of the recursive handshake: the
	// client's opt-in and the engine's live PIRRecursive knob — exactly
	// the pair a remote fetch negotiates over the wire.
	recursive := c.fetchRecursive && c.engine.livePIRRecursive()
	return c.fetchVia(ctx, localPIR{
		sn:       sn,
		workers:  c.engine.livePIRWorkers(),
		amortize: c.engine.livePIRBatchAmortize(),
	}, ids, recursive)
}

// FetchDocumentsRemote privately fetches the given documents from a
// remote engine over the wire protocol. The server must run with
// ServeConfig.AllowRetrieval and a document store; the connection can
// be reused for searches before and after, so one session typically
// ranks (SearchRemote) and then fetches the winners. The server
// observes only the number of blocks fetched, never which ones.
//
// Block fetches are pipelined over the single connection: up to the
// fetch-pipeline window (SetFetchPipeline, default
// DefaultFetchPipeline) of block queries travel in batch frames while
// earlier answers stream back, so the connection must support
// concurrent Read and Write (every net.Conn does). Servers predating
// the batch messages are detected on the first frame and the fetch
// transparently retries through the sequential one-round-trip-per-
// block protocol (which SetFetchPipeline(1) also selects directly).
//
// After a successful fetch the connection is immediately reusable.
// After a document-level failure (a checksum error from a mid-fetch
// delete, an unfetchable id) the in-flight answers are drained and
// the connection remains usable. After a transport or protocol
// failure the stream state is undefined: close the connection and
// dial a fresh one.
func (c *Client) FetchDocumentsRemote(conn io.ReadWriter, ids []int) ([][]byte, FetchStats, error) {
	return c.FetchDocumentsRemoteContext(context.Background(), conn, ids)
}

// FetchDocumentsRemoteContext is FetchDocumentsRemote under a context:
// cancellation is honored at frame boundaries — the client stops
// committing new block queries and drains the answers already in
// flight, so the connection stays reusable after an abandoned fetch.
// (The server applies its own per-request deadline to each scan; see
// ServeConfig.RequestTimeout.)
func (c *Client) FetchDocumentsRemoteContext(ctx context.Context, conn io.ReadWriter, ids []int) ([][]byte, FetchStats, error) {
	depth := c.pipelineDepth()
	// Remote-only clients have no engine to read the amortization knob
	// from; default on, matching loaded engines.
	amortize := true
	if c.engine != nil {
		amortize = c.engine.livePIRBatchAmortize()
	}
	out, st, err := c.fetchVia(ctx, remotePIR{
		conn:     conn,
		depth:    depth,
		amortize: amortize,
	}, ids, c.fetchRecursive)
	if c.fetchRecursive && errors.Is(err, errRecursiveUnsupported) {
		// The server refused the very first recursive frame (recursive
		// frames are synchronous, so exactly one was exchanged and the
		// stream is still aligned): retry the whole fetch through the
		// flat protocol. Old servers and a PIRRecursive knob of -1 send
		// the identical refusal — the fallback covers both.
		out, st, err = c.fetchVia(ctx, remotePIR{
			conn:     conn,
			depth:    depth,
			amortize: amortize,
		}, ids, false)
	}
	if depth > 1 && errors.Is(err, errBatchUnsupported) {
		// A server predating the batch messages refused the very first
		// batch frame (the pipeline slow-starts, so exactly one frame
		// was exchanged and the stream is still aligned): retry the
		// whole fetch through the sequential protocol it does speak.
		return c.fetchVia(ctx, remotePIR{conn: conn, depth: 1}, ids, false)
	}
	return out, st, err
}

// errBatchUnsupported marks a server that answered the first batch
// frame with the pre-batch "unexpected message type" refusal.
var errBatchUnsupported = errors.New("embellish: server does not speak batched PIR fetches")

// fetchVia runs the client side of the fetch protocol: obtain the
// block mapping, then one PIR execution per block of each document —
// generated by a pipeline goroutine, served by the transport, and
// reassembled strictly in order, each document checksum-verified as
// its last block arrives. Any unfetchable id (never assigned, or
// tombstoned) fails the whole call — the error names the id, and no
// partial results are returned. With recursive set, the executions are
// two-level recursive queries (RunRecursive) whose answers decode to
// the same block bytes — the reassembly, truncation and checksum logic
// is deliberately shared so the two protocols cannot drift.
func (c *Client) fetchVia(ctx context.Context, t pirTransport, ids []int, recursive bool) ([][]byte, FetchStats, error) {
	var st FetchStats
	if len(ids) == 0 {
		return nil, st, errors.New("embellish: no documents to fetch")
	}
	key, err := c.pirKey()
	if err != nil {
		return nil, st, err
	}
	params, err := t.Params()
	if err != nil {
		return nil, st, err
	}
	// Validate every id BEFORE the first (expensive) PIR run.
	for _, id := range ids {
		if id < 0 || id >= len(params.Exts) {
			return nil, st, fmt.Errorf("embellish: document %d does not exist", id)
		}
		if params.Exts[id].Deleted {
			return nil, st, fmt.Errorf("embellish: document %d is deleted", id)
		}
	}

	// One task per PIR run, in delivery order; remaining[i] counts the
	// blocks of ids[i] still to arrive.
	type task struct{ pos, col int }
	var tasks []task
	out := make([][]byte, len(ids))
	remaining := make([]int, len(ids))
	for i, id := range ids {
		ext := params.Exts[id]
		remaining[i] = int(ext.Blocks)
		out[i] = make([]byte, 0, int(ext.Blocks)*params.BlockSize)
		for b := 0; b < int(ext.Blocks); b++ {
			tasks = append(tasks, task{pos: i, col: int(ext.First) + b})
		}
		if ext.Blocks == 0 && crc32.ChecksumIEEE(nil) != ext.Crc {
			return nil, st, fmt.Errorf("embellish: document %d bytes fail their checksum (deleted or corrupted mid-fetch)", id)
		}
	}

	// Generator goroutine: building a query costs one residuosity draw
	// per block column (per GRID row+column for recursive queries), so
	// it runs ahead of the transport, bounded by the pipeline window.
	// It owns its stats until joined below.
	qch := make(chan *pir.Query, c.pipelineDepth())
	rch := make(chan *pir.RecursiveQuery, c.pipelineDepth())
	done := make(chan struct{})
	var (
		wg            sync.WaitGroup
		genErr        error
		genQueryBytes int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(qch)
		defer close(rch)
		for _, tk := range tasks {
			if recursive {
				q, err := key.NewRecursiveQuery(c.inner.CryptoRand, params.NumBlocks, tk.col)
				if err != nil {
					genErr = err
					return
				}
				genQueryBytes += key.RecursiveQueryBytes(params.NumBlocks)
				select {
				case rch <- q:
				case <-done:
					return
				}
				continue
			}
			q, err := key.NewQuery(c.inner.CryptoRand, params.NumBlocks, tk.col)
			if err != nil {
				genErr = err
				return
			}
			genQueryBytes += key.QueryBytes(params.NumBlocks)
			select {
			case qch <- q:
			case <-done:
				return
			}
		}
	}()

	// Ordered reassembly: answers arrive in task order; a document is
	// finalized — truncated to its true length and checksum-verified —
	// the moment its last block lands. A document deleted between the
	// mapping fetch and its last block decodes as (partially) zeroed
	// blocks (the server zeroes tombstoned blocks in place); the
	// checksum turns that silent corruption into an error.
	next := 0
	var deliverErr error // deliver's own errors already carry context
	deliver := func(ans *pir.Answer) error {
		if next >= len(tasks) {
			return errors.New("embellish: more PIR answers than queries")
		}
		var bits []bool
		if recursive {
			modBytes := (key.N.BitLen() + 7) / 8
			if want := 64 * params.BlockSize * modBytes; len(ans.Gammas) != want {
				return fmt.Errorf("embellish: recursive PIR answer has %d rows, want %d", len(ans.Gammas), want)
			}
			var derr error
			bits, derr = key.DecodeRecursive(ans, params.BlockSize)
			if derr != nil {
				return fmt.Errorf("embellish: decoding recursive PIR answer: %w", derr)
			}
		} else {
			if len(ans.Gammas) != 8*params.BlockSize {
				return fmt.Errorf("embellish: PIR answer has %d rows, want %d", len(ans.Gammas), 8*params.BlockSize)
			}
			bits = key.Decode(ans)
		}
		st.Runs++
		st.AnswerBytes += key.AnswerBytes(len(ans.Gammas))
		tk := tasks[next]
		next++
		out[tk.pos] = append(out[tk.pos], pir.ColumnBytes(bits)[:params.BlockSize]...)
		remaining[tk.pos]--
		if remaining[tk.pos] == 0 {
			ext := params.Exts[ids[tk.pos]]
			doc := out[tk.pos][:ext.Length]
			if crc32.ChecksumIEEE(doc) != ext.Crc {
				deliverErr = fmt.Errorf("embellish: document %d bytes fail their checksum (deleted or corrupted mid-fetch)", ids[tk.pos])
				return deliverErr
			}
			out[tk.pos] = doc
		}
		return nil
	}
	if recursive {
		err = t.RunRecursive(ctx, rch, deliver)
	} else {
		err = t.Run(ctx, qch, deliver)
	}
	close(done)
	wg.Wait()
	st.QueryBytes = genQueryBytes
	if err != nil {
		// Delivery errors already name their document; transport and
		// serving errors get the first undelivered position attached,
		// so a failing fetch names which document and block it died on.
		if err != deliverErr && next < len(tasks) {
			tk := tasks[next]
			ext := params.Exts[ids[tk.pos]]
			return nil, st, fmt.Errorf("embellish: document %d block %d: %w",
				ids[tk.pos], int(ext.Blocks)-remaining[tk.pos], err)
		}
		return nil, st, err
	}
	if genErr != nil {
		return nil, st, fmt.Errorf("embellish: building PIR query: %w", genErr)
	}
	if next != len(tasks) {
		return nil, st, fmt.Errorf("embellish: fetch ended after %d of %d blocks", next, len(tasks))
	}
	return out, st, nil
}

package embellish

import (
	"strings"
	"testing"
)

func TestExpandQueryAddsSynonyms(t *testing.T) {
	_, c := testEngine(t)
	out, err := c.ExpandQuery("osteosarcoma", 4)
	if err != nil {
		t.Fatal(err)
	}
	terms := strings.Split(out, " ")
	if len(terms) < 2 {
		t.Fatalf("no expansion: %q", out)
	}
	if !strings.Contains(out, "osteosarcoma") {
		t.Fatalf("original term lost: %q", out)
	}
}

func TestExpandQueryThenSearchPreservesClaim1(t *testing.T) {
	e, c := testEngine(t)
	expanded, err := c.ExpandQuery("osteosarcoma radiation", 3)
	if err != nil {
		t.Fatal(err)
	}
	private, err := c.Search(expanded, 10)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.PlaintextSearch(expanded, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if private[i] != plain[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, private[i], plain[i])
		}
	}
}

func TestExpandQueryErrors(t *testing.T) {
	_, c := testEngine(t)
	if _, err := c.ExpandQuery("", 0); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := c.ExpandQuery("zzznope yyynothere", 0); err == nil {
		t.Fatal("out-of-lexicon query accepted")
	}
}

package embellish

import (
	"strings"
	"testing"
)

func TestExpandQueryAddsSynonyms(t *testing.T) {
	_, c := testEngine(t)
	out, err := c.ExpandQuery("osteosarcoma", 4)
	if err != nil {
		t.Fatal(err)
	}
	terms := strings.Split(out, " ")
	if len(terms) < 2 {
		t.Fatalf("no expansion: %q", out)
	}
	if !strings.Contains(out, "osteosarcoma") {
		t.Fatalf("original term lost: %q", out)
	}
}

func TestExpandQueryThenSearchPreservesClaim1(t *testing.T) {
	e, c := testEngine(t)
	expanded, err := c.ExpandQuery("osteosarcoma radiation", 3)
	if err != nil {
		t.Fatal(err)
	}
	private, err := c.Search(expanded, 10)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.PlaintextSearch(expanded, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if private[i] != plain[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, private[i], plain[i])
		}
	}
}

func TestExpandQueryErrors(t *testing.T) {
	_, c := testEngine(t)
	if _, err := c.ExpandQuery("", 0); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := c.ExpandQuery("zzznope yyynothere", 0); err == nil {
		t.Fatal("out-of-lexicon query accepted")
	}
}

func TestExpandQueryNoDuplicateTerms(t *testing.T) {
	// Regression guard: the expanded string must never analyze back to
	// the same searchable term twice — a duplicated term would get two
	// decoy buckets and skew the embellished query's shape. The check
	// runs through the engine's own analyzer because multi-word lemmas
	// ("osteogenic sarcoma", "osteogenic tumor") legitimately share
	// words; only whole-lemma duplicates are bugs.
	_, c := testEngine(t)
	for _, q := range []string{"osteosarcoma", "osteosarcoma radiation", "hypocapnia"} {
		out, err := c.ExpandQuery(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, tok := range c.engine.analyzer.Analyze(out) {
			if seen[tok] {
				t.Fatalf("query %q expanded with duplicate term %q: %q", q, tok, out)
			}
			seen[tok] = true
		}
	}
}

package embellish

import (
	"bytes"
	"errors"
	"testing"

	"embellish/internal/detrand"
)

// TestLexiconPayloadRoundTrip pins the tentpole's core contract: a
// client world rebuilt from the sync payload is byte-compatible with
// the engine's own — given the same crypto stream and permutation
// seed, both sides embellish ANY query into the identical wire frame.
// This is what makes synced remote clients protocol-equivalent to
// engine-file clients.
func TestLexiconPayloadRoundTrip(t *testing.T) {
	e, _ := testEngine(t)
	l, err := e.lexiconPayload()
	if err != nil {
		t.Fatal(err)
	}
	if l.Version == 0 || l.Current {
		t.Fatalf("malformed payload: %+v", l)
	}
	if l.ScoreSpace != e.opts.ScoreSpace || l.KeyBits != e.opts.KeyBits || l.Stopwords != e.opts.Stopwords {
		t.Fatalf("payload options drifted: %+v", l)
	}
	w, err := buildWorld(l)
	if err != nil {
		t.Fatal(err)
	}
	if w.org.Terms() != e.org.Terms() || w.org.NumBuckets() != e.org.NumBuckets() {
		t.Fatalf("synced organization shape (%d terms, %d buckets) != engine (%d, %d)",
			w.org.Terms(), w.org.NumBuckets(), e.org.Terms(), e.org.NumBuckets())
	}

	queries := []string{
		"osteosarcoma therapy",
		"anxiety disorder treatment",
		"cancer",
	}
	for _, query := range queries {
		local, err := e.NewClient(detrand.New("sync-identity"))
		if err != nil {
			t.Fatal(err)
		}
		synced, err := newWorldClient(w, detrand.New("sync-identity"))
		if err != nil {
			t.Fatal(err)
		}
		// Key generation is deliberately nondeterministic even with a
		// deterministic reader (crypto/rand.Prime flips a coin on how
		// many bytes it consumes), so the property under test is world
		// equivalence, not keygen: same key + same encryption stream +
		// same permutation seed must give identical bytes.
		synced.inner.Key = local.inner.Key
		local.inner.CryptoRand = detrand.New("sync-identity-enc")
		synced.inner.CryptoRand = detrand.New("sync-identity-enc")
		local.SetEmbellishSeed(42)
		synced.SetEmbellishSeed(42)
		lq, err := local.Embellish(query)
		if err != nil {
			continue // not every phrase is in the mini corpus
		}
		sq, err := synced.Embellish(query)
		if err != nil {
			t.Fatalf("synced client cannot embellish %q: %v", query, err)
		}
		lf, err := lq.WireFrame()
		if err != nil {
			t.Fatal(err)
		}
		sf, err := sq.WireFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lf, sf) {
			t.Fatalf("wire frames diverge for %q: %d vs %d bytes", query, len(lf), len(sf))
		}
	}
}

func TestLexiconVersionStable(t *testing.T) {
	e, _ := testEngine(t)
	v1, err := e.LexiconVersion()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.LexiconVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || v1 == 0 {
		t.Fatalf("version unstable: %d, %d", v1, v2)
	}
	// A differently bucketed engine must disagree: the organization
	// bytes (and thus the content hash) change with BucketSize.
	opts := DefaultOptions()
	opts.BucketSize = 6
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	other, err := NewEngine(MiniLexicon(), demoDocs(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := other.LexiconVersion()
	if err != nil {
		t.Fatal(err)
	}
	if ov == v1 {
		t.Fatal("different bucket organizations produced the same lexicon version")
	}
}

func TestRemoteOnlyClientGuards(t *testing.T) {
	e, _ := testEngine(t)
	l, err := e.lexiconPayload()
	if err != nil {
		t.Fatal(err)
	}
	w, err := buildWorld(l)
	if err != nil {
		t.Fatal(err)
	}
	c, err := newWorldClient(w, detrand.New("remote-only"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search("cancer", 5); !errors.Is(err, ErrRemoteOnly) {
		t.Fatalf("Search on remote-only client: %v, want ErrRemoteOnly", err)
	}
	if _, _, err := c.FetchDocuments([]int{0}); !errors.Is(err, ErrRemoteOnly) {
		t.Fatalf("FetchDocuments on remote-only client: %v, want ErrRemoteOnly", err)
	}
	// Embellish and Decode still work (no engine needed).
	if _, err := c.Embellish("cancer"); err != nil {
		t.Fatalf("Embellish on remote-only client: %v", err)
	}
}

func TestBuildWorldRejectsCorruptPayloads(t *testing.T) {
	e, _ := testEngine(t)
	l, err := e.lexiconPayload()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt organization bytes: crc in the persistence codec rejects.
	bad := l
	bad.Org = append([]byte{}, l.Org...)
	bad.Org[len(bad.Org)/2] ^= 0xff
	if _, err := buildWorld(bad); err == nil {
		t.Error("corrupt organization accepted")
	}
	// Corrupt lexicon bytes likewise.
	bad = l
	bad.Lex = append([]byte{}, l.Lex...)
	bad.Lex[len(bad.Lex)/2] ^= 0xff
	if _, err := buildWorld(bad); err == nil {
		t.Error("corrupt lexicon accepted")
	}
	// A structurally valid organization over a DIFFERENT (smaller)
	// lexicon must fail the cross-consistency check, not index out of
	// bounds later.
	small := SyntheticLexicon(40, 9)
	small.freeze()
	var smallLex bytes.Buffer
	if _, err := small.db.WriteTo(&smallLex); err != nil {
		t.Fatal(err)
	}
	bad = l
	bad.Lex = smallLex.Bytes()
	if _, err := buildWorld(bad); err == nil {
		t.Error("organization/lexicon mismatch accepted")
	}
	// Hostile option fields are refused.
	bad = l
	bad.ScoreSpace = 0
	if _, err := buildWorld(bad); err == nil {
		t.Error("zero score space accepted")
	}
}

package embellish

import (
	"errors"
	"math/rand"

	"embellish/internal/privacy"
	"embellish/internal/semdist"
)

// Audit is the outcome of an engine privacy audit: the Section 5.1
// metrics for the engine's bucket organization side by side with the
// random-decoy baseline. Lower is better on every field.
type Audit struct {
	// SpecificitySpread is the mean intra-bucket specificity difference:
	// how well decoys match genuine terms in specificity.
	SpecificitySpread float64
	// RandomSpecificitySpread is the same metric for random buckets.
	RandomSpecificitySpread float64
	// ClosestCover / FarthestCover are the mean best and worst
	// |dist - dist'| between a genuine term pair's semantic distance and
	// its decoy pairs' distances, over sampled bucket pairs.
	ClosestCover  float64
	FarthestCover float64
	// RandomClosestCover / RandomFarthestCover are the baselines.
	RandomClosestCover  float64
	RandomFarthestCover float64
	// Trials is the number of bucket-pair samples taken.
	Trials int
}

// PrivacyAudit measures the decoy quality of the engine's bucket
// organization, reproducing the paper's Figure 5/6 metrics on this
// deployment's dictionary. trials is the number of sampled bucket pairs
// (the paper uses 1,000); seed fixes the sampling.
func (e *Engine) PrivacyAudit(trials int, seed int64) (Audit, error) {
	if trials < 1 {
		return Audit{}, errors.New("embellish: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	calc := semdist.New(e.lex.db, 40)

	a := Audit{
		SpecificitySpread: privacy.AvgSpecSpread(e.org, e.lex.db.Specificity),
	}
	dd := privacy.MeasureDistanceDifference(e.org, calc, trials, rng)
	a.ClosestCover, a.FarthestCover, a.Trials = dd.Closest, dd.Farthest, dd.Trials

	randOrg, err := privacy.RandomOrganization(e.searchable, e.opts.BucketSize, rng)
	if err != nil {
		return a, err
	}
	a.RandomSpecificitySpread = privacy.AvgSpecSpread(randOrg, e.lex.db.Specificity)
	rd := privacy.MeasureDistanceDifference(randOrg, calc, trials, rng)
	a.RandomClosestCover, a.RandomFarthestCover = rd.Closest, rd.Farthest
	return a, nil
}

package embellish

import (
	"errors"

	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

// Lexicon is the term-association database that drives decoy selection:
// terms grouped into synsets, synsets linked by typed semantic relations,
// and specificity derived from the hypernym hierarchy (Section 3.2 of
// the paper). The paper uses the WordNet noun database; this library
// accepts any source with the same shape.
type Lexicon struct {
	db *wordnet.Database
	// building is true until Freeze; the Engine freezes automatically.
	building bool
}

// RelationType labels a semantic relation between two senses.
type RelationType uint8

// Relation types, in Algorithm 1's order of closeness. AddRelation
// stores the inverse direction automatically (hyponym/hypernym,
// meronym/holonym; derivation, antonym and domain are symmetric enough
// for the algorithms' purposes).
const (
	Derivation RelationType = iota // derivationally related, e.g. man/manhood
	Antonym
	Hyponym // specialization: AddRelation(general, specific, Hyponym)
	Meronym // part-of: AddRelation(whole, part, Meronym)
	Domain  // topic/usage domain membership (skipped by sequencing)
)

// relMap converts the public relation labels to the internal ones.
var relMap = map[RelationType]wordnet.RelationType{
	Derivation: wordnet.RelDerivation,
	Antonym:    wordnet.RelAntonym,
	Hyponym:    wordnet.RelHyponym,
	Meronym:    wordnet.RelMeronym,
	Domain:     wordnet.RelDomainTopic,
}

// NewLexicon returns an empty lexicon to be populated with AddSynset and
// AddRelation.
func NewLexicon() *Lexicon {
	return &Lexicon{db: wordnet.NewDatabase(), building: true}
}

// MiniLexicon returns the hand-curated lexicon containing the paper's
// running-example vocabulary (osteosarcoma, amaranthaceae, hypocapnia,
// abu sayyaf, ...). Useful for demos and tests.
func MiniLexicon() *Lexicon {
	return &Lexicon{db: wordnet.MiniLexicon()}
}

// SyntheticLexicon generates a WordNet-scale lexicon with n synsets
// (117,798 terms / 82,115 synsets at n=82115, the paper's scale) whose
// specificity histogram matches the paper's Figure 2. Deterministic
// given the seed.
func SyntheticLexicon(n int, seed int64) *Lexicon {
	return &Lexicon{db: wngen.Generate(wngen.ScaledConfig(n, seed))}
}

// SynsetID identifies a sense added via AddSynset.
type SynsetID = wordnet.SynsetID

// AddSynset records one sense shared by the given lemmas (multi-word
// lemmas like "abu sayyaf" are allowed) and returns its identifier.
func (l *Lexicon) AddSynset(lemmas []string, gloss string) (SynsetID, error) {
	if !l.building {
		return 0, errors.New("embellish: lexicon is frozen (already used by an engine)")
	}
	if len(lemmas) == 0 {
		return 0, errors.New("embellish: synset needs at least one lemma")
	}
	terms := make([]wordnet.TermID, len(lemmas))
	for i, s := range lemmas {
		if t, ok := l.db.Lookup(s); ok {
			terms[i] = t
			continue
		}
		terms[i] = l.db.AddTerm(s)
	}
	return l.db.AddSynset(terms, gloss), nil
}

// AddRelation links two senses. For hierarchical types the direction
// matters: AddRelation(general, specific, Hyponym) and
// AddRelation(whole, part, Meronym).
func (l *Lexicon) AddRelation(a, b SynsetID, typ RelationType) error {
	if !l.building {
		return errors.New("embellish: lexicon is frozen (already used by an engine)")
	}
	rt, ok := relMap[typ]
	if !ok {
		return errors.New("embellish: unknown relation type")
	}
	l.db.AddRelation(a, b, rt)
	return nil
}

// NumTerms reports the number of distinct lemmas.
func (l *Lexicon) NumTerms() int { return l.db.NumTerms() }

// NumSynsets reports the number of senses.
func (l *Lexicon) NumSynsets() int { return l.db.NumSynsets() }

// Specificity returns the specificity of a lemma (shortest hypernym path
// from any of its synsets to a hierarchy root), or false when the lemma
// is not in the lexicon. Only meaningful after the lexicon has been used
// by an engine (which freezes it), or on the built-in lexicons.
func (l *Lexicon) Specificity(lemma string) (int, bool) {
	t, ok := l.db.Lookup(lemma)
	if !ok {
		return 0, false
	}
	if l.building {
		return 0, false
	}
	return l.db.Specificity(t), true
}

// freeze finalizes the lexicon for use by an engine.
func (l *Lexicon) freeze() {
	if l.building {
		l.db.Freeze()
		l.building = false
	}
}

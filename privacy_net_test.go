package embellish

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"embellish/internal/detrand"
	"embellish/internal/eval"
	"embellish/internal/privacy"
	"embellish/internal/wire"
	"embellish/internal/wordnet"
)

// The PR 9 battery: the paper's privacy figures, reproduced through
// the NETWORKED stack. An engine serves over TCP with lexicon sync and
// risk auditing enabled; remote clients sync their world over the
// wire, embellish locally, stream queries (with and without decoy
// cover), and the server — playing the Section 3.1 adversary — scores
// what it observed. The per-session audit must agree with the
// in-process evaluator of record (eval.RiskPoint) on the same query
// sets, at 10x the seed corpus, under -race with concurrent traffic.

// startGatedServer serves an engine over a real TCP listener with the
// given config and returns a dialer plus a shutdown func.
func startGatedServer(t *testing.T, e *Engine, cfg ServeConfig) (dial func() net.Conn, stop func()) {
	t.Helper()
	srv := e.NewNetServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	addr := l.Addr().String()
	dial = func() net.Conn {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		return c
	}
	stop = func() {
		_ = srv.Shutdown(context.Background())
		<-done
	}
	return dial, stop
}

// riskQueries draws trials queries of n distinct searchable terms,
// mirroring eval.Env.RiskQueries on an engine's dictionary.
func riskQueries(e *Engine, trials, n int, seed int64) [][]wordnet.TermID {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]wordnet.TermID, trials)
	for i := range out {
		perm := rng.Perm(len(e.searchable))
		q := make([]wordnet.TermID, n)
		for j := 0; j < n; j++ {
			q[j] = e.searchable[perm[j]]
		}
		out[i] = q
	}
	return out
}

// TestNetworkedRiskFigureMatchesEvaluator is the acceptance spine: the
// risk-vs-BktSz privacy figure, reproduced against live servers at 10x
// the seed corpus (3,000 documents vs the evaluator default 300), must
// match the in-process evaluator of record within micro-unit rounding —
// while concurrent mixed traffic (genuine + decoy streams on other
// connections) hammers the same server, proving session isolation.
func TestNetworkedRiskFigureMatchesEvaluator(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 3,000-doc networked figure in -short mode")
	}
	const (
		synsets = 2500
		numDocs = 3000 // 10x the evaluator's default 300-doc corpus
		trials  = 25
		qSize   = 4
	)
	docs := syntheticWorldDocs(t, synsets, numDocs, 1)
	bktSzs := []int{2, 4, 8}
	means := make([]float64, 0, len(bktSzs))
	for _, bktSz := range bktSzs {
		opts := DefaultOptions()
		opts.BucketSize = bktSz
		opts.KeyBits = 256
		e, err := NewEngine(SyntheticLexicon(synsets, 1), docs, opts)
		if err != nil {
			t.Fatalf("BktSz=%d: NewEngine: %v", bktSz, err)
		}
		queries := riskQueries(e, trials, qSize, 70)

		// The evaluator of record, in process.
		want, err := eval.RiskPoint(privacy.NewAuditor(e.org, e.lex.db), queries)
		if err != nil {
			t.Fatalf("BktSz=%d: RiskPoint: %v", bktSz, err)
		}

		dial, stop := startGatedServer(t, e, ServeConfig{
			AllowLexiconSync: true,
			RiskAudit:        true,
		})

		// Concurrent mixed traffic on other connections: genuine remote
		// searches and decoy streams. Their sessions must not bleed into
		// the audited session's report.
		ctx, cancelNoise := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				conn := dial()
				defer conn.Close()
				c, err := e.NewClient(detrand.New(fmt.Sprintf("noise-%d-%d", bktSz, w)))
				if err != nil {
					return
				}
				d, err := c.NewDecoyStream(DecoyStreamConfig{GhostRate: 2, Seed: int64(w)})
				if err != nil {
					return
				}
				query := e.lex.db.Lemma(e.searchable[w]) + " " + e.lex.db.Lemma(e.searchable[w+7])
				for ctx.Err() == nil {
					if _, err := d.SearchRemote(ctx, conn, query, 5); err != nil {
						return
					}
				}
			}(w)
		}

		// The audited session: sync the world over the wire, embellish
		// the evaluator's exact query set locally, stream it.
		conn := dial()
		rw, err := SyncLexicon(conn)
		if err != nil {
			t.Fatalf("BktSz=%d: SyncLexicon: %v", bktSz, err)
		}
		c, err := rw.NewClient(detrand.New(fmt.Sprintf("audited-%d", bktSz)))
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			inner, skipped, err := c.inner.Embellish(q)
			if err != nil || len(skipped) > 0 {
				t.Fatalf("BktSz=%d: query %d embellish: %v (skipped %v)", bktSz, qi, err, skipped)
			}
			if err := wire.WriteQuery(conn, inner); err != nil {
				t.Fatal(err)
			}
			typ, body, err := wire.ReadMessage(conn)
			if err != nil {
				t.Fatal(err)
			}
			if typ == wire.TypeError {
				t.Fatalf("BktSz=%d: query %d refused: %s", bktSz, qi, body)
			}
		}
		report, err := SessionRiskAudit(conn)
		if err != nil {
			t.Fatalf("BktSz=%d: SessionRiskAudit: %v", bktSz, err)
		}
		cancelNoise()
		wg.Wait()
		conn.Close()
		stop()

		if report.Queries != trials || report.Audited != trials || report.Skipped != 0 {
			t.Fatalf("BktSz=%d: audited session saw %d queries, scored %d, skipped %d; want %d/%d/0 (session isolation)",
				bktSz, report.Queries, report.Audited, report.Skipped, trials, trials)
		}
		if report.Decoys != 0 {
			t.Fatalf("BktSz=%d: audited session reports %d decoys from other connections", bktSz, report.Decoys)
		}
		// Micro-unit rounding is the only divergence allowed between the
		// wire audit and the in-process evaluator: both run the identical
		// factorized estimator on identical bucket sets.
		if diff := math.Abs(report.MeanRisk - want); diff > 2e-6 {
			t.Fatalf("BktSz=%d: networked mean risk %.9f, evaluator %.9f (diff %.2e)", bktSz, report.MeanRisk, want, diff)
		}
		if report.MaxRisk <= 0 || report.MaxRisk > 1 {
			t.Fatalf("BktSz=%d: max risk %.9f out of (0,1]", bktSz, report.MaxRisk)
		}
		t.Logf("BktSz=%d: risk %.6f (evaluator %.6f) over %d queries at %d docs", bktSz, report.MeanRisk, want, trials, numDocs)
		means = append(means, report.MeanRisk)
	}
	// The paper's figure shape: more decoys per genuine term, less risk.
	for i := 1; i < len(means); i++ {
		if means[i] >= means[i-1] {
			t.Fatalf("risk not decreasing across BktSz %v: %v", bktSzs, means)
		}
	}
}

// TestSyncedRemoteRankingMatchesLocalSearch is the battery's property
// test: across random corpora and online churn, a remote-only client
// built from a wire lexicon sync must rank exactly like an engine-bound
// client running the same searches in process — Claim 1 end to end
// through the served-embellishment path.
func TestSyncedRemoteRankingMatchesLocalSearch(t *testing.T) {
	for _, seed := range []int64{3, 11, 27} {
		seed := seed
		t.Run(fmt.Sprintf("corpus-%d", seed), func(t *testing.T) {
			docs := syntheticWorldDocs(t, 900, 160, seed)
			opts := DefaultOptions()
			opts.BucketSize = 4
			opts.KeyBits = 256
			e, err := NewEngine(SyntheticLexicon(900, seed), docs[:120], opts)
			if err != nil {
				t.Fatal(err)
			}
			dial, stop := startGatedServer(t, e, ServeConfig{
				AllowLexiconSync: true,
				AllowUpdates:     true,
			})
			defer stop()
			conn := dial()
			defer conn.Close()
			rw, err := SyncLexicon(conn)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := rw.NewClient(detrand.New(fmt.Sprintf("prop-remote-%d", seed)))
			if err != nil {
				t.Fatal(err)
			}
			local, err := e.NewClient(detrand.New(fmt.Sprintf("prop-local-%d", seed)))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 7))
			compare := func(round string) {
				for i := 0; i < 5; i++ {
					a := e.searchable[rng.Intn(len(e.searchable))]
					b := e.searchable[rng.Intn(len(e.searchable))]
					query := e.lex.db.Lemma(a) + " " + e.lex.db.Lemma(b)
					got, err := remote.SearchRemote(conn, query, 10)
					if err != nil {
						t.Fatalf("%s: remote %q: %v", round, query, err)
					}
					want, err := local.Search(query, 10)
					if err != nil {
						t.Fatalf("%s: local %q: %v", round, query, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s: %q: remote %d results, local %d", round, query, len(got), len(want))
					}
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("%s: %q rank %d: remote %+v local %+v", round, query, j, got[j], want[j])
						}
					}
				}
			}
			compare("pre-churn")
			// Online churn: the organization and lexicon are pinned at
			// construction, so the synced world stays valid — and both
			// clients must agree on the new corpus too.
			if err := e.AddDocuments(docs[120:]); err != nil {
				t.Fatal(err)
			}
			if err := e.DeleteDocuments([]int{docs[3].ID, docs[40].ID}); err != nil {
				t.Fatal(err)
			}
			compare("post-churn")
			// The lexicon version is corpus-independent: still current.
			v, err := e.LexiconVersion()
			if err != nil {
				t.Fatal(err)
			}
			if rw.Version() != v {
				t.Fatalf("churn changed the lexicon version: synced %d, engine %d", rw.Version(), v)
			}
			if err := CheckLexicon(conn, rw.Version()); err != nil {
				t.Fatalf("CheckLexicon after churn: %v", err)
			}
		})
	}
}

// TestDecoyStreamNeverPerturbsResults is the adversarial leg: decoy
// cover at rate 0 and at an extreme rate must return exactly the
// rankings a plain remote search returns, decoys must be visible in the
// server's aggregate counters (they are real work), and the per-session
// audit must separate them from genuine traffic without NaN artifacts
// when rounds are empty — the network-level regression for the
// trackmenot division guards.
func TestDecoyStreamNeverPerturbsResults(t *testing.T) {
	e, _ := testEngine(t)
	dial, stop := startGatedServer(t, e, ServeConfig{RiskAudit: true})
	defer stop()

	query := e.lex.db.Lemma(e.searchable[4]) + " " + e.lex.db.Lemma(e.searchable[9])
	baseline, err := func() ([]Result, error) {
		conn := dial()
		defer conn.Close()
		c, err := e.NewClient(detrand.New("decoy-baseline"))
		if err != nil {
			return nil, err
		}
		return c.SearchRemote(conn, query, 10)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("baseline search returned nothing")
	}

	for _, rate := range []int{-1, 16} {
		conn := dial()
		c, err := e.NewClient(detrand.New(fmt.Sprintf("decoy-rate-%d", rate)))
		if err != nil {
			t.Fatal(err)
		}
		d, err := c.NewDecoyStream(DecoyStreamConfig{GhostRate: rate, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.SearchRemote(context.Background(), conn, query, 10)
		if err != nil {
			t.Fatalf("rate %d: %v", rate, err)
		}
		if len(got) != len(baseline) {
			t.Fatalf("rate %d: %d results, baseline %d", rate, len(got), len(baseline))
		}
		for i := range baseline {
			if got[i] != baseline[i] {
				t.Fatalf("rate %d: rank %d diverged: %+v vs %+v", rate, i, got[i], baseline[i])
			}
		}
		st := d.Stats()
		wantDecoys := int64(0)
		if rate > 0 {
			wantDecoys = int64(rate)
		}
		if st.Genuine != 1 || st.Decoys != wantDecoys {
			t.Fatalf("rate %d: stream stats %+v, want 1 genuine / %d decoys", rate, st, wantDecoys)
		}
		// Force a deterministic adversary round on the positive-rate leg:
		// explicit ghosts, then a genuine frame (the burst's own round
		// depends on where the seeded scheduler placed the genuine query).
		wantGenuine := 1
		if rate > 0 {
			if err := d.SendGhosts(context.Background(), conn, 3, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := c.SearchRemote(conn, query, 10); err != nil {
				t.Fatal(err)
			}
			wantDecoys += 3
			wantGenuine = 2
		}
		report, err := SessionRiskAudit(conn)
		if err != nil {
			t.Fatal(err)
		}
		if report.Queries != wantGenuine || report.Decoys != int(wantDecoys) {
			t.Fatalf("rate %d: audit %+v, want %d genuine / %d decoys", rate, report, wantGenuine, wantDecoys)
		}
		if rate > 0 && report.Rounds < 1 {
			t.Fatalf("rate %d: no adversary round despite pending decoys", rate)
		}
		if rate < 0 && report.Rounds != 0 {
			t.Fatalf("rate %d: %d adversary rounds without decoys", rate, report.Rounds)
		}
		// NaN regression: success rate and means must be clean numbers
		// whether or not any round or audit completed.
		for name, v := range map[string]float64{
			"AdversarySuccess": report.AdversarySuccess(),
			"MeanRisk":         report.MeanRisk,
			"MeanGenuineCoh":   report.MeanGenuineCoherence,
			"MeanDecoyCoh":     report.MeanDecoyCoherence,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("rate %d: %s is %v", rate, name, v)
			}
		}
		conn.Close()
	}

	// Aggregate counters: decoys are counted as decoys AND as served
	// queries (they are identical work), and the audit counters moved.
	st := func() ServeStats {
		conn := dial()
		defer conn.Close()
		stats, err := ServerStats(conn)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}()
	if st.DecoyQueries != 19 {
		t.Fatalf("server counted %d decoy queries, want 19", st.DecoyQueries)
	}
	if st.Queries < 4+19 {
		t.Fatalf("server counted %d queries, want >= 23 (decoys are served work)", st.Queries)
	}
	if st.RiskAudited == 0 || st.RiskSumMicros == 0 {
		t.Fatalf("risk audit counters did not move: %+v", st)
	}
	// The empty-body stats and metrics surfaces agree (drift guard for
	// the new rows).
	text := string(e.NewNetServer(ServeConfig{}).MetricsText())
	for _, row := range []string{"embellish_decoy_queries_total", "embellish_risk_audited_total", "embellish_risk_skipped_total", "embellish_risk_sum"} {
		if !strings.Contains(text, row) {
			t.Fatalf("metrics page missing %s", row)
		}
	}
	if strings.Contains(text, "NaN") {
		t.Fatal("metrics page renders NaN")
	}
}

// TestLexiconSyncGates pins the gate semantics: a server without
// AllowLexiconSync refuses the sync with a plain wire error and the
// connection stays fully usable; a stale client version is refused with
// the FROZEN typed StaleLexiconRefusal that surfaces as ErrStaleLexicon;
// the risk-audit gate behaves the same way.
func TestLexiconSyncGates(t *testing.T) {
	e, c := testEngine(t)

	t.Run("sync disabled", func(t *testing.T) {
		dial, stop := startGatedServer(t, e, ServeConfig{})
		defer stop()
		conn := dial()
		defer conn.Close()
		if _, err := SyncLexicon(conn); err == nil {
			t.Fatal("sync succeeded through a disabled gate")
		} else if errors.Is(err, ErrStaleLexicon) {
			t.Fatalf("disabled gate mislabeled as staleness: %v", err)
		}
		// The refusal left the connection reusable.
		query := e.lex.db.Lemma(e.searchable[2])
		if _, err := c.SearchRemote(conn, query, 5); err != nil {
			t.Fatalf("connection unusable after gate refusal: %v", err)
		}
	})

	t.Run("stale version", func(t *testing.T) {
		dial, stop := startGatedServer(t, e, ServeConfig{AllowLexiconSync: true})
		defer stop()
		conn := dial()
		defer conn.Close()
		v, err := e.LexiconVersion()
		if err != nil {
			t.Fatal(err)
		}
		// Current version: the probe answers clean.
		if err := CheckLexicon(conn, v); err != nil {
			t.Fatalf("current version probed stale: %v", err)
		}
		// A drifted version gets the loud typed error.
		err = CheckLexicon(conn, v+1)
		if !errors.Is(err, ErrStaleLexicon) {
			t.Fatalf("stale probe error %v, want ErrStaleLexicon", err)
		}
		// And the connection survives for a full sync.
		if _, err := SyncLexicon(conn); err != nil {
			t.Fatalf("full sync after stale probe: %v", err)
		}
	})

	t.Run("audit disabled", func(t *testing.T) {
		dial, stop := startGatedServer(t, e, ServeConfig{})
		defer stop()
		conn := dial()
		defer conn.Close()
		if _, err := SessionRiskAudit(conn); err == nil {
			t.Fatal("audit served through a disabled gate")
		}
		query := e.lex.db.Lemma(e.searchable[3])
		if _, err := c.SearchRemote(conn, query, 5); err != nil {
			t.Fatalf("connection unusable after audit refusal: %v", err)
		}
	})
}

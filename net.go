package embellish

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"embellish/internal/core"
	"embellish/internal/wire"
)

// Network deployment: the paper's protocol is client-server — the
// client embellishes and decrypts, the engine only ever sees the
// embellished query. NetServer turns an Engine into a long-running
// concurrent service speaking the internal/wire framing: one goroutine
// per connection, a connection limit, graceful shutdown, and per-query
// timing. SearchRemote runs the client side of one query against any
// such service; SearchRemoteBatch amortizes framing over several
// queries. Both endpoints typically load the same engine file
// (Save/LoadEngine), which is how they come to agree on the bucket
// organization.

// DefaultMaxConns is the simultaneous-connection limit applied when
// ServeConfig.MaxConns is zero.
const DefaultMaxConns = 1024

// ServeConfig tunes a NetServer.
type ServeConfig struct {
	// MaxConns caps simultaneous connections: above the cap, new
	// connections are answered with a protocol error and closed. 0
	// selects DefaultMaxConns; negative disables the cap.
	MaxConns int
	// IdleTimeout closes a connection when no query arrives within the
	// window (a dead peer would otherwise hold a connection slot
	// forever). 0 disables the deadline.
	IdleTimeout time.Duration
	// AllowUpdates opts the server in to the admin messages
	// (TypeAddDocs / TypeDeleteDocs) that add and delete documents
	// online. Off by default: updates come from the corpus owner, not
	// from searching users, so a deployment must deliberately expose
	// them — typically on a separate, access-controlled listener.
	AllowUpdates bool
	// AllowRetrieval opts the server in to the private document-fetch
	// messages (TypePIRParams / TypePIRQuery / TypePIRBatchQuery). Off
	// by default: each PIR answer costs ~8·BlockSize·NumBlocks modular
	// multiplications, so a deployment must deliberately expose that
	// CPU surface. Requires an engine built with
	// Options.StoreDocuments (or loaded from a version-3 file carrying
	// a store).
	AllowRetrieval bool
	// PIRWorkers caps the per-query parallelism of the PIR answers
	// this server computes, overriding the engine's Options.PIRWorkers
	// knob: 0 inherits the engine option (read at answer time, so
	// Engine.ConfigurePIRWorkers affects live servers exactly like the
	// other execution knobs), -1 selects GOMAXPROCS workers with the
	// windowed fast path, and any positive value pins the worker
	// count. Values outside the Options.PIRWorkers range [-1, 4096]
	// are clamped to it (the constructor has no error path). Answers
	// are byte-identical in every plan.
	PIRWorkers int
}

// ServeStats is a snapshot of a NetServer's counters.
type ServeStats struct {
	// Accepted and Rejected count connections; Rejected ones were turned
	// away at the MaxConns cap.
	Accepted, Rejected int64
	// Active is the number of currently open connections.
	Active int64
	// Queries counts queries answered (each batch member counts once).
	Queries int64
	// Updates counts applied admin operations (adds and deletes).
	Updates int64
	// Retrievals counts answered PIR block queries (one per protocol
	// execution; a k-block document fetch counts k times).
	Retrievals int64
	// Errors counts protocol-level errors answered with a wire error
	// message (the connection survives those).
	Errors int64
	// QueryTime is the total server-side processing time across all
	// queries; MaxQueryTime is the slowest single query.
	QueryTime, MaxQueryTime time.Duration
}

// NetServer serves the private-retrieval wire protocol for one Engine
// over any number of listeners and connections concurrently. The
// zero value is not usable; construct with Engine.NewNetServer.
type NetServer struct {
	engine         *Engine
	maxConns       int
	idle           time.Duration
	allowUpdates   bool
	allowRetrieval bool
	// pirOverride is ServeConfig.PIRWorkers (clamped); 0 defers to the
	// engine's Options.PIRWorkers at answer time.
	pirOverride int

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	shutdown  bool

	accepted   atomic.Int64
	rejected   atomic.Int64
	active     atomic.Int64
	queries    atomic.Int64
	updates    atomic.Int64
	retrievals atomic.Int64
	errs       atomic.Int64
	busyNs     atomic.Int64 // total processing time
	maxNs      atomic.Int64 // slowest single query
	inflight   atomic.Int64 // queries currently being processed
}

// NewNetServer builds a concurrent protocol server around the engine.
func (e *Engine) NewNetServer(cfg ServeConfig) *NetServer {
	maxConns := cfg.MaxConns
	if maxConns == 0 {
		maxConns = e.opts.MaxConns
	}
	if maxConns == 0 {
		maxConns = DefaultMaxConns
	}
	// Clamp the override to the validated Options.PIRWorkers range:
	// the engine value passed validation, but the ServeConfig override
	// arrives unchecked and an unbounded count would size a per-query
	// goroutine pool.
	pirOverride := cfg.PIRWorkers
	if pirOverride < -1 {
		pirOverride = -1
	}
	if pirOverride > maxPIRWorkers {
		pirOverride = maxPIRWorkers
	}
	return &NetServer{
		engine:         e,
		maxConns:       maxConns,
		idle:           cfg.IdleTimeout,
		allowUpdates:   cfg.AllowUpdates,
		allowRetrieval: cfg.AllowRetrieval,
		pirOverride:    pirOverride,
		listeners:      make(map[net.Listener]struct{}),
		conns:          make(map[net.Conn]struct{}),
	}
}

// pirWorkers resolves the serving plan for one PIR answer: the
// ServeConfig override when set, else the engine's CURRENT plan —
// read atomically at answer time, so ConfigurePIRWorkers affects
// live servers.
func (s *NetServer) pirWorkers() int {
	if s.pirOverride != 0 {
		return s.pirOverride
	}
	return s.engine.livePIRWorkers()
}

// Stats returns a snapshot of the server's counters.
func (s *NetServer) Stats() ServeStats {
	return ServeStats{
		Accepted:     s.accepted.Load(),
		Rejected:     s.rejected.Load(),
		Active:       s.active.Load(),
		Queries:      s.queries.Load(),
		Updates:      s.updates.Load(),
		Retrievals:   s.retrievals.Load(),
		Errors:       s.errs.Load(),
		QueryTime:    time.Duration(s.busyNs.Load()),
		MaxQueryTime: time.Duration(s.maxNs.Load()),
	}
}

// Serve accepts connections until the listener is closed (directly or
// via Shutdown), handling each connection in its own goroutine. It
// returns the listener's accept error — net.ErrClosed after a clean
// shutdown becomes nil.
func (s *NetServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		l.Close()
		return errors.New("embellish: server is shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.register(conn) {
			// Over the cap (or shutting down): tell the peer why before
			// hanging up, so clients fail with a useful error.
			s.rejected.Add(1)
			_ = wire.WriteError(conn, "server at connection limit")
			conn.Close()
			continue
		}
		s.accepted.Add(1)
		go func() {
			defer s.unregister(conn)
			_ = s.serveConn(conn, conn)
		}()
	}
}

func (s *NetServer) register(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return false
	}
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	s.active.Add(1)
	return true
}

func (s *NetServer) unregister(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.active.Add(-1)
	}
	s.mu.Unlock()
}

// Shutdown gracefully stops the server: close the listeners, wait for
// in-flight queries to finish (up to the context deadline), then close
// all connections. It returns the context's error when the deadline
// fired before the server drained.
func (s *NetServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	var err error
drain:
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break drain
		case <-tick.C:
		}
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// A graceful shutdown leaves a durable engine checkpoint-clean, so
	// the next boot loads the snapshot and replays nothing. Runs after
	// the drain: every acknowledged update is in the captured state.
	if cerr := s.engine.checkpointIfDirty(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// serveConn answers queries on one transport until EOF or a transport
// error. Malformed queries are answered with a protocol error message
// and the connection stays up; transport failures end the session.
// deadliner is the connection for deadline control, nil for plain
// io.ReadWriter transports.
func (s *NetServer) serveConn(rw io.ReadWriter, deadliner net.Conn) error {
	for {
		if s.idle > 0 && deadliner != nil {
			_ = deadliner.SetReadDeadline(time.Now().Add(s.idle))
		}
		typ, body, err := wire.ReadMessage(rw)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch typ {
		case wire.TypeQuery:
			// inflight spans decode through response write (for batches,
			// the whole batch), so a graceful Shutdown never cuts a
			// connection between computing an answer and delivering it.
			s.inflight.Add(1)
			err = s.answerQuery(rw, body)
			s.inflight.Add(-1)
		case wire.TypeBatchQuery:
			s.inflight.Add(1)
			err = s.answerBatch(rw, body)
			s.inflight.Add(-1)
		case wire.TypeAddDocs, wire.TypeDeleteDocs:
			// inflight also spans admin operations so a graceful Shutdown
			// never cuts a connection between applying an update and
			// acknowledging it.
			s.inflight.Add(1)
			err = s.answerAdmin(rw, typ, body)
			s.inflight.Add(-1)
		case wire.TypePIRParams, wire.TypePIRQuery, wire.TypePIRBatchQuery:
			s.inflight.Add(1)
			err = s.answerRetrieval(rw, typ, body)
			s.inflight.Add(-1)
		default:
			s.errs.Add(1)
			err = wire.WriteError(rw, fmt.Sprintf("%s %d", wire.UnknownTypeRefusal, typ))
		}
		if err != nil {
			return err
		}
	}
}

// process runs one embellished query through the engine's configured
// pipeline, timing it into the server counters. The caller (serveConn)
// holds the inflight count for the whole message exchange.
func (s *NetServer) process(q *core.Query) (*core.Response, core.Stats, error) {
	start := time.Now()
	resp, st, err := s.engine.processCore(q)
	elapsed := time.Since(start)
	s.queries.Add(1)
	s.busyNs.Add(int64(elapsed))
	for {
		cur := s.maxNs.Load()
		if int64(elapsed) <= cur || s.maxNs.CompareAndSwap(cur, int64(elapsed)) {
			break
		}
	}
	return resp, st, err
}

func (s *NetServer) answerQuery(rw io.ReadWriter, body []byte) error {
	q, err := wire.DecodeQuery(body)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	resp, stats, err := s.process(q)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	return wire.WriteResponse(rw, resp, stats)
}

// answerAdmin applies one online corpus update — behind the opt-in
// AllowUpdates flag — and acknowledges with the resulting corpus shape.
// Rejected and malformed requests are answered with a wire error and
// the connection stays up.
func (s *NetServer) answerAdmin(rw io.ReadWriter, typ byte, body []byte) error {
	if !s.allowUpdates {
		s.errs.Add(1)
		return wire.WriteError(rw, "live updates are disabled on this server")
	}
	var err error
	switch typ {
	case wire.TypeAddDocs:
		var dts []wire.DocText
		if dts, err = wire.DecodeAddDocs(body); err == nil {
			docs := make([]Document, len(dts))
			for i, d := range dts {
				docs[i] = Document{ID: int(d.ID), Text: d.Text}
			}
			err = s.engine.AddDocuments(docs)
		}
	case wire.TypeDeleteDocs:
		var ids []uint32
		if ids, err = wire.DecodeDeleteDocs(body); err == nil {
			del := make([]int, len(ids))
			for i, id := range ids {
				del[i] = int(id)
			}
			err = s.engine.DeleteDocuments(del)
		}
	}
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	s.updates.Add(1)
	// On durable engines, fold the journal into a checkpoint in the
	// background once the Durability thresholds are crossed — bounding
	// both log growth and the next restart's replay time. Single-flight
	// and off the request path, so the ack below never waits on it.
	s.engine.maybeCheckpointAsync()
	// One snapshot for the whole ack, so the (docs, segments) pair is
	// internally consistent even when other updates or merges land
	// between the apply and the ack.
	snap := s.engine.Snapshot()
	return wire.WriteAdminOK(rw, snap.NumDocs(), snap.NumSegments())
}

// answerRetrieval serves the private document-fetch messages — behind
// the opt-in AllowRetrieval flag — from one store snapshot per
// message. Refusals and malformed queries are answered with a wire
// error and the connection stays up, matching the admin path.
func (s *NetServer) answerRetrieval(rw io.ReadWriter, typ byte, body []byte) error {
	if !s.allowRetrieval {
		s.errs.Add(1)
		return wire.WriteError(rw, "private document retrieval is disabled on this server")
	}
	snap, err := s.engine.storeSnapshot()
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, "this server stores no documents")
	}
	switch typ {
	case wire.TypePIRParams:
		if len(body) != 0 {
			s.errs.Add(1)
			return wire.WriteError(rw, "params request carries no body")
		}
		return wire.WritePIRParams(rw, snap.Params())
	case wire.TypePIRBatchQuery:
		// One snapshot answers the whole batch, so a pipelined fetch
		// reads an internally consistent corpus prefix. Answers stream
		// back one frame each as they are computed; a failing block is
		// answered with a wire error that ends the batch (the
		// connection survives, matching the single-query path).
		qs, err := wire.DecodePIRBatchQuery(body)
		if err != nil {
			s.errs.Add(1)
			return wire.WriteError(rw, err.Error())
		}
		for i, q := range qs {
			ans, err := answerPIR(snap, q, s.pirWorkers())
			if err != nil {
				s.errs.Add(1)
				return wire.WriteError(rw, fmt.Sprintf("batch block %d: %v", i, err))
			}
			s.retrievals.Add(1)
			if err := wire.WritePIRBatchAnswer(rw, i, ans); err != nil {
				return err
			}
		}
		return nil
	default: // wire.TypePIRQuery
		q, err := wire.DecodePIRQuery(body)
		if err != nil {
			s.errs.Add(1)
			return wire.WriteError(rw, err.Error())
		}
		ans, err := answerPIR(snap, q, s.pirWorkers())
		if err != nil {
			s.errs.Add(1)
			return wire.WriteError(rw, err.Error())
		}
		s.retrievals.Add(1)
		return wire.WritePIRAnswer(rw, ans)
	}
}

func (s *NetServer) answerBatch(rw io.ReadWriter, body []byte) error {
	qs, err := wire.DecodeBatchQuery(body)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	resps := make([]*core.Response, len(qs))
	stats := make([]core.Stats, len(qs))
	for i, q := range qs {
		resp, st, err := s.process(q)
		if err != nil {
			s.errs.Add(1)
			return wire.WriteError(rw, fmt.Sprintf("batch query %d: %v", i, err))
		}
		resps[i] = resp
		stats[i] = st
	}
	return wire.WriteBatchResponse(rw, resps, stats)
}

// Serve accepts connections on a default-configured NetServer. Kept as
// the simple entry point; deployments needing connection limits,
// timeouts or graceful shutdown construct a NetServer explicitly.
func (e *Engine) Serve(l net.Listener) error {
	return e.NewNetServer(ServeConfig{}).Serve(l)
}

// ServeConn answers queries on one transport until EOF or a transport
// error, without connection accounting — the transport is managed by
// the caller.
func (e *Engine) ServeConn(conn io.ReadWriter) error {
	deadliner, _ := conn.(net.Conn)
	return e.NewNetServer(ServeConfig{}).serveConn(conn, deadliner)
}

// SearchRemote runs one private query against a remote engine: Algorithm
// 3 locally, Algorithm 4 on the server, Algorithm 5 locally. The
// connection can be reused across calls.
func (c *Client) SearchRemote(conn io.ReadWriter, query string, k int) ([]Result, error) {
	eq, err := c.Embellish(query)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteQuery(conn, eq.inner); err != nil {
		return nil, fmt.Errorf("embellish: sending query: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, fmt.Errorf("embellish: server error: %s", body)
	case wire.TypeResponse:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	cands, _, err := wire.DecodeResponse(body)
	if err != nil {
		return nil, err
	}
	return c.decodeCandidates(cands, k)
}

// SearchRemoteBatch runs several private queries against a remote
// engine in one round-trip: every query is embellished locally, the
// batch travels as a single frame carrying the public key once, and the
// per-query rankings come back in order. Queries that cannot be
// embellished fail the whole batch (the caller knows exactly which —
// the error names the query index).
func (c *Client) SearchRemoteBatch(conn io.ReadWriter, queries []string, k int) ([][]Result, error) {
	if len(queries) == 0 {
		return nil, errors.New("embellish: empty batch")
	}
	qs := make([]*core.Query, len(queries))
	for i, query := range queries {
		eq, err := c.Embellish(query)
		if err != nil {
			return nil, fmt.Errorf("embellish: batch query %d: %w", i, err)
		}
		qs[i] = eq.inner
	}
	if err := wire.WriteBatchQuery(conn, qs); err != nil {
		return nil, fmt.Errorf("embellish: sending batch: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading batch response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, fmt.Errorf("embellish: server error: %s", body)
	case wire.TypeBatchResponse:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	cands, _, err := wire.DecodeBatchResponse(body)
	if err != nil {
		return nil, err
	}
	if len(cands) != len(queries) {
		return nil, fmt.Errorf("embellish: batch response has %d results for %d queries", len(cands), len(queries))
	}
	out := make([][]Result, len(cands))
	for i := range cands {
		res, err := c.decodeCandidates(cands[i], k)
		if err != nil {
			return nil, fmt.Errorf("embellish: batch result %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// AdminStatus reports a remote server's corpus shape after an applied
// online update.
type AdminStatus struct {
	// LiveDocs is the server's live (non-deleted) document count.
	LiveDocs int
	// Segments is the server's live-index segment count.
	Segments int
}

// AddDocumentsRemote adds documents to a remote engine that was started
// with updates enabled (ServeConfig.AllowUpdates). Document ids must
// continue the remote engine's dense sequence, exactly as with
// Engine.AddDocuments; when both endpoints share an engine file, the
// local engine's NextDocID supplies them. Ingests larger than one
// admin frame (wire.MaxAdminDocs documents) are batched across frames;
// each frame is applied atomically on the server, so an error partway
// through a batched ingest means the earlier frames ARE applied — the
// returned status always reflects the server's state after the last
// acknowledged frame. The connection can be reused for queries before
// and after.
func AddDocumentsRemote(conn io.ReadWriter, docs []Document) (AdminStatus, error) {
	if len(docs) == 0 {
		return AdminStatus{}, errors.New("embellish: no documents to add")
	}
	dts := make([]wire.DocText, len(docs))
	for i, d := range docs {
		if d.ID < 0 || d.ID > 1<<31-1 {
			return AdminStatus{}, fmt.Errorf("embellish: document id %d out of range", d.ID)
		}
		dts[i] = wire.DocText{ID: uint32(d.ID), Text: d.Text}
	}
	// Chunk by count AND by cumulative text bytes: every document can be
	// individually valid yet a MaxAdminDocs-sized frame of large ones
	// would blow the wire frame cap.
	const maxChunkBytes = 16 << 20
	var st AdminStatus
	sent := 0
	for start := 0; start < len(dts); {
		end, bytes := start, 0
		for end < len(dts) && end-start < wire.MaxAdminDocs {
			bytes += len(dts[end].Text)
			if end > start && bytes > maxChunkBytes {
				break
			}
			end++
		}
		chunk := dts[start:end]
		next, err := adminRoundTrip(conn, func() error { return wire.WriteAddDocs(conn, chunk) })
		if err != nil {
			if sent > 0 {
				return st, fmt.Errorf("embellish: %d of %d documents applied: %w", sent, len(dts), err)
			}
			return st, err
		}
		st = next
		sent += len(chunk)
		start = end
	}
	return st, nil
}

// DeleteDocumentsRemote tombstones documents on a remote engine that
// was started with updates enabled (ServeConfig.AllowUpdates). Deletes
// larger than one admin frame batch across frames like
// AddDocumentsRemote.
func DeleteDocumentsRemote(conn io.ReadWriter, ids []int) (AdminStatus, error) {
	if len(ids) == 0 {
		return AdminStatus{}, errors.New("embellish: no documents to delete")
	}
	u := make([]uint32, len(ids))
	for i, id := range ids {
		if id < 0 || id > 1<<31-1 {
			return AdminStatus{}, fmt.Errorf("embellish: document id %d out of range", id)
		}
		u[i] = uint32(id)
	}
	var st AdminStatus
	for start := 0; start < len(u); start += wire.MaxAdminDocs {
		chunk := u[start:min(start+wire.MaxAdminDocs, len(u))]
		next, err := adminRoundTrip(conn, func() error { return wire.WriteDeleteDocs(conn, chunk) })
		if err != nil {
			if start > 0 {
				return st, fmt.Errorf("embellish: %d of %d deletions applied: %w", start, len(u), err)
			}
			return st, err
		}
		st = next
	}
	return st, nil
}

// adminRoundTrip sends one admin frame and reads the acknowledgement.
func adminRoundTrip(conn io.ReadWriter, write func() error) (AdminStatus, error) {
	if err := write(); err != nil {
		return AdminStatus{}, fmt.Errorf("embellish: sending update: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return AdminStatus{}, fmt.Errorf("embellish: reading update response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return AdminStatus{}, fmt.Errorf("embellish: server error: %s", body)
	case wire.TypeAdminOK:
	default:
		return AdminStatus{}, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	live, segs, err := wire.DecodeAdminOK(body)
	if err != nil {
		return AdminStatus{}, err
	}
	return AdminStatus{LiveDocs: live, Segments: segs}, nil
}

// decodeCandidates runs Algorithm 5 over wire candidates.
func (c *Client) decodeCandidates(cands []wire.Candidate, k int) ([]Result, error) {
	resp := &core.Response{}
	for _, cand := range cands {
		resp.Docs = append(resp.Docs, core.DocScore{Doc: cand.Doc, Enc: cand.Enc})
	}
	ranked, err := c.inner.PostFilter(resp, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ranked))
	for i, r := range ranked {
		out[i] = Result{DocID: int(r.Doc), Score: r.Score}
	}
	return out, nil
}

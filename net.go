package embellish

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"embellish/internal/core"
	"embellish/internal/wire"
)

// Network deployment: the paper's protocol is client-server — the
// client embellishes and decrypts, the engine only ever sees the
// embellished query. NetServer turns an Engine into a long-running
// concurrent service speaking the internal/wire framing: one goroutine
// per connection, a connection limit, graceful shutdown, and per-query
// timing. SearchRemote runs the client side of one query against any
// such service; SearchRemoteBatch amortizes framing over several
// queries. Both endpoints typically load the same engine file
// (Save/LoadEngine), which is how they come to agree on the bucket
// organization.

// DefaultMaxConns is the simultaneous-connection limit applied when
// ServeConfig.MaxConns is zero.
const DefaultMaxConns = 1024

// ServeConfig tunes a NetServer.
type ServeConfig struct {
	// MaxConns caps simultaneous connections: above the cap, new
	// connections are answered with a protocol error and closed. 0
	// selects DefaultMaxConns; negative disables the cap.
	MaxConns int
	// IdleTimeout closes a connection when no query arrives within the
	// window (a dead peer would otherwise hold a connection slot
	// forever). 0 disables the deadline.
	IdleTimeout time.Duration
}

// ServeStats is a snapshot of a NetServer's counters.
type ServeStats struct {
	// Accepted and Rejected count connections; Rejected ones were turned
	// away at the MaxConns cap.
	Accepted, Rejected int64
	// Active is the number of currently open connections.
	Active int64
	// Queries counts queries answered (each batch member counts once).
	Queries int64
	// Errors counts protocol-level errors answered with a wire error
	// message (the connection survives those).
	Errors int64
	// QueryTime is the total server-side processing time across all
	// queries; MaxQueryTime is the slowest single query.
	QueryTime, MaxQueryTime time.Duration
}

// NetServer serves the private-retrieval wire protocol for one Engine
// over any number of listeners and connections concurrently. The
// zero value is not usable; construct with Engine.NewNetServer.
type NetServer struct {
	engine   *Engine
	maxConns int
	idle     time.Duration

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	shutdown  bool

	accepted atomic.Int64
	rejected atomic.Int64
	active   atomic.Int64
	queries  atomic.Int64
	errs     atomic.Int64
	busyNs   atomic.Int64 // total processing time
	maxNs    atomic.Int64 // slowest single query
	inflight atomic.Int64 // queries currently being processed
}

// NewNetServer builds a concurrent protocol server around the engine.
func (e *Engine) NewNetServer(cfg ServeConfig) *NetServer {
	maxConns := cfg.MaxConns
	if maxConns == 0 {
		maxConns = e.opts.MaxConns
	}
	if maxConns == 0 {
		maxConns = DefaultMaxConns
	}
	return &NetServer{
		engine:    e,
		maxConns:  maxConns,
		idle:      cfg.IdleTimeout,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Stats returns a snapshot of the server's counters.
func (s *NetServer) Stats() ServeStats {
	return ServeStats{
		Accepted:     s.accepted.Load(),
		Rejected:     s.rejected.Load(),
		Active:       s.active.Load(),
		Queries:      s.queries.Load(),
		Errors:       s.errs.Load(),
		QueryTime:    time.Duration(s.busyNs.Load()),
		MaxQueryTime: time.Duration(s.maxNs.Load()),
	}
}

// Serve accepts connections until the listener is closed (directly or
// via Shutdown), handling each connection in its own goroutine. It
// returns the listener's accept error — net.ErrClosed after a clean
// shutdown becomes nil.
func (s *NetServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		l.Close()
		return errors.New("embellish: server is shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.register(conn) {
			// Over the cap (or shutting down): tell the peer why before
			// hanging up, so clients fail with a useful error.
			s.rejected.Add(1)
			_ = wire.WriteError(conn, "server at connection limit")
			conn.Close()
			continue
		}
		s.accepted.Add(1)
		go func() {
			defer s.unregister(conn)
			_ = s.serveConn(conn, conn)
		}()
	}
}

func (s *NetServer) register(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return false
	}
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	s.active.Add(1)
	return true
}

func (s *NetServer) unregister(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.active.Add(-1)
	}
	s.mu.Unlock()
}

// Shutdown gracefully stops the server: close the listeners, wait for
// in-flight queries to finish (up to the context deadline), then close
// all connections. It returns the context's error when the deadline
// fired before the server drained.
func (s *NetServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	var err error
drain:
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break drain
		case <-tick.C:
		}
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

// serveConn answers queries on one transport until EOF or a transport
// error. Malformed queries are answered with a protocol error message
// and the connection stays up; transport failures end the session.
// deadliner is the connection for deadline control, nil for plain
// io.ReadWriter transports.
func (s *NetServer) serveConn(rw io.ReadWriter, deadliner net.Conn) error {
	for {
		if s.idle > 0 && deadliner != nil {
			_ = deadliner.SetReadDeadline(time.Now().Add(s.idle))
		}
		typ, body, err := wire.ReadMessage(rw)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch typ {
		case wire.TypeQuery:
			// inflight spans decode through response write (for batches,
			// the whole batch), so a graceful Shutdown never cuts a
			// connection between computing an answer and delivering it.
			s.inflight.Add(1)
			err = s.answerQuery(rw, body)
			s.inflight.Add(-1)
		case wire.TypeBatchQuery:
			s.inflight.Add(1)
			err = s.answerBatch(rw, body)
			s.inflight.Add(-1)
		default:
			s.errs.Add(1)
			err = wire.WriteError(rw, fmt.Sprintf("unexpected message type %d", typ))
		}
		if err != nil {
			return err
		}
	}
}

// process runs one embellished query through the engine's configured
// pipeline, timing it into the server counters. The caller (serveConn)
// holds the inflight count for the whole message exchange.
func (s *NetServer) process(q *core.Query) (*core.Response, core.Stats, error) {
	start := time.Now()
	resp, st, err := s.engine.processCore(q)
	elapsed := time.Since(start)
	s.queries.Add(1)
	s.busyNs.Add(int64(elapsed))
	for {
		cur := s.maxNs.Load()
		if int64(elapsed) <= cur || s.maxNs.CompareAndSwap(cur, int64(elapsed)) {
			break
		}
	}
	return resp, st, err
}

func (s *NetServer) answerQuery(rw io.ReadWriter, body []byte) error {
	q, err := wire.DecodeQuery(body)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	resp, stats, err := s.process(q)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	return wire.WriteResponse(rw, resp, stats)
}

func (s *NetServer) answerBatch(rw io.ReadWriter, body []byte) error {
	qs, err := wire.DecodeBatchQuery(body)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	resps := make([]*core.Response, len(qs))
	stats := make([]core.Stats, len(qs))
	for i, q := range qs {
		resp, st, err := s.process(q)
		if err != nil {
			s.errs.Add(1)
			return wire.WriteError(rw, fmt.Sprintf("batch query %d: %v", i, err))
		}
		resps[i] = resp
		stats[i] = st
	}
	return wire.WriteBatchResponse(rw, resps, stats)
}

// Serve accepts connections on a default-configured NetServer. Kept as
// the simple entry point; deployments needing connection limits,
// timeouts or graceful shutdown construct a NetServer explicitly.
func (e *Engine) Serve(l net.Listener) error {
	return e.NewNetServer(ServeConfig{}).Serve(l)
}

// ServeConn answers queries on one transport until EOF or a transport
// error, without connection accounting — the transport is managed by
// the caller.
func (e *Engine) ServeConn(conn io.ReadWriter) error {
	deadliner, _ := conn.(net.Conn)
	return e.NewNetServer(ServeConfig{}).serveConn(conn, deadliner)
}

// SearchRemote runs one private query against a remote engine: Algorithm
// 3 locally, Algorithm 4 on the server, Algorithm 5 locally. The
// connection can be reused across calls.
func (c *Client) SearchRemote(conn io.ReadWriter, query string, k int) ([]Result, error) {
	eq, err := c.Embellish(query)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteQuery(conn, eq.inner); err != nil {
		return nil, fmt.Errorf("embellish: sending query: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, fmt.Errorf("embellish: server error: %s", body)
	case wire.TypeResponse:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	cands, _, err := wire.DecodeResponse(body)
	if err != nil {
		return nil, err
	}
	return c.decodeCandidates(cands, k)
}

// SearchRemoteBatch runs several private queries against a remote
// engine in one round-trip: every query is embellished locally, the
// batch travels as a single frame carrying the public key once, and the
// per-query rankings come back in order. Queries that cannot be
// embellished fail the whole batch (the caller knows exactly which —
// the error names the query index).
func (c *Client) SearchRemoteBatch(conn io.ReadWriter, queries []string, k int) ([][]Result, error) {
	if len(queries) == 0 {
		return nil, errors.New("embellish: empty batch")
	}
	qs := make([]*core.Query, len(queries))
	for i, query := range queries {
		eq, err := c.Embellish(query)
		if err != nil {
			return nil, fmt.Errorf("embellish: batch query %d: %w", i, err)
		}
		qs[i] = eq.inner
	}
	if err := wire.WriteBatchQuery(conn, qs); err != nil {
		return nil, fmt.Errorf("embellish: sending batch: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading batch response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, fmt.Errorf("embellish: server error: %s", body)
	case wire.TypeBatchResponse:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	cands, _, err := wire.DecodeBatchResponse(body)
	if err != nil {
		return nil, err
	}
	if len(cands) != len(queries) {
		return nil, fmt.Errorf("embellish: batch response has %d results for %d queries", len(cands), len(queries))
	}
	out := make([][]Result, len(cands))
	for i := range cands {
		res, err := c.decodeCandidates(cands[i], k)
		if err != nil {
			return nil, fmt.Errorf("embellish: batch result %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// decodeCandidates runs Algorithm 5 over wire candidates.
func (c *Client) decodeCandidates(cands []wire.Candidate, k int) ([]Result, error) {
	resp := &core.Response{}
	for _, cand := range cands {
		resp.Docs = append(resp.Docs, core.DocScore{Doc: cand.Doc, Enc: cand.Enc})
	}
	ranked, err := c.inner.PostFilter(resp, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ranked))
	for i, r := range ranked {
		out[i] = Result{DocID: int(r.Doc), Score: r.Score}
	}
	return out, nil
}

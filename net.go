package embellish

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"embellish/internal/core"
	"embellish/internal/docstore"
	"embellish/internal/pir"
	"embellish/internal/wire"
)

// Network deployment: the paper's protocol is client-server — the
// client embellishes and decrypts, the engine only ever sees the
// embellished query. NetServer turns an Engine into a long-running
// concurrent service speaking the internal/wire framing: one goroutine
// per connection, a connection limit, graceful shutdown, and per-query
// timing. SearchRemote runs the client side of one query against any
// such service; SearchRemoteBatch amortizes framing over several
// queries. Both endpoints typically load the same engine file
// (Save/LoadEngine), which is how they come to agree on the bucket
// organization.

// DefaultMaxConns is the simultaneous-connection limit applied when
// ServeConfig.MaxConns is zero.
const DefaultMaxConns = 1024

// ServeConfig tunes a NetServer.
type ServeConfig struct {
	// MaxConns caps simultaneous connections: above the cap, new
	// connections are answered with a protocol error and closed. 0
	// selects DefaultMaxConns; negative disables the cap.
	MaxConns int
	// IdleTimeout closes a connection when no query arrives within the
	// window (a dead peer would otherwise hold a connection slot
	// forever). 0 disables the deadline.
	IdleTimeout time.Duration
	// AllowUpdates opts the server in to the admin messages
	// (TypeAddDocs / TypeDeleteDocs) that add and delete documents
	// online. Off by default: updates come from the corpus owner, not
	// from searching users, so a deployment must deliberately expose
	// them — typically on a separate, access-controlled listener.
	AllowUpdates bool
	// AllowRetrieval opts the server in to the private document-fetch
	// messages (TypePIRParams / TypePIRQuery / TypePIRBatchQuery). Off
	// by default: each PIR answer costs ~8·BlockSize·NumBlocks modular
	// multiplications, so a deployment must deliberately expose that
	// CPU surface. Requires an engine built with
	// Options.StoreDocuments (or loaded from a version-3 file carrying
	// a store).
	AllowRetrieval bool
	// PIRWorkers caps the per-query parallelism of the PIR answers
	// this server computes, overriding the engine's Options.PIRWorkers
	// knob: 0 inherits the engine option (read at answer time, so
	// Engine.ConfigurePIRWorkers affects live servers exactly like the
	// other execution knobs), -1 selects GOMAXPROCS workers with the
	// windowed fast path, and any positive value pins the worker
	// count. Values outside the Options.PIRWorkers range [-1, 4096]
	// are clamped to it (the constructor has no error path). Answers
	// are byte-identical in every plan.
	PIRWorkers int
	// PIRBatchAmortize overrides the engine's Options.PIRBatchAmortize
	// escape hatch for batch frames served by this server: 0 inherits
	// the engine knob (read at answer time, so
	// Engine.ConfigurePIRBatchAmortize affects live servers), -1
	// forces per-query serving, 1 forces the amortized one-pass
	// multi-query scan. Values outside [-1, 1] are clamped. Answers
	// and wire framing are byte-identical either way.
	PIRBatchAmortize int
	// PIRRecursive overrides the engine's Options.PIRRecursive switch
	// for recursive (two-level) fetch frames served by this server: 0
	// inherits the engine knob (read at answer time, so
	// Engine.ConfigurePIRRecursive affects live servers), -1 refuses
	// TypePIRRecursiveQuery frames (clients fall back to flat queries),
	// 1 forces serving them. Values outside [-1, 1] are clamped.
	// Decoded documents are byte-identical either way.
	PIRRecursive int
	// MaxInflight enables bounded admission control: at most this many
	// requests execute at once, and requests past the limit park in a
	// FIFO queue (QueueDepth, QueueTimeout) instead of piling onto the
	// CPU. Under overload the server then sheds with a typed
	// retry-hint error (the wire.OverloadRefusal prefix) rather than
	// letting every request's latency collapse together. 0 disables
	// admission control (every request executes immediately — the
	// pre-queue behavior); -1 selects GOMAXPROCS; positive values pin
	// the limit.
	MaxInflight int
	// QueueDepth bounds the admission queue when MaxInflight is set: a
	// request arriving with QueueDepth requests already parked is shed
	// immediately. 0 selects DefaultQueueDepth.
	QueueDepth int
	// QueueTimeout bounds one request's queue wait when MaxInflight is
	// set: a request still parked when it expires is shed with the
	// overload error. 0 selects DefaultQueueTimeout; negative waits
	// forever.
	QueueTimeout time.Duration
	// AllowReplication opts the server in to the WAL-shipping message
	// (TypeWALPull) that lets read replicas pull the journal suffix
	// they are missing. Off by default: shipped records carry raw
	// document bytes, so a deployment must deliberately expose them —
	// typically on the same access-controlled listener as the admin
	// messages. Requires a durable engine (the journal is the
	// replication log).
	AllowReplication bool
	// AllowLexiconSync opts the server in to the lexicon-sync message
	// (TypeLexiconSync) that ships the bucket organization and synset
	// tables to remote clients so they can embellish locally without
	// the engine file. The payload is public knowledge in the paper's
	// threat model (the adversary knows the organization); the gate
	// controls operational exposure — the tables can be megabytes, so a
	// deployment must deliberately expose that bandwidth surface.
	AllowLexiconSync bool
	// RiskAudit opts the server in to per-session privacy-risk
	// auditing: every decoded query frame (genuine or decoy) on a
	// connection is scored by the paper's Section 6 adversary model,
	// and the session's accumulated report is served on TypeRiskAudit.
	// Off by default: auditing spends semantic-distance work per query
	// frame, so a deployment must deliberately enable it.
	RiskAudit bool
	// RequestTimeout is the server-side deadline for one request's
	// engine work (search queries, batch frames and PIR scans — admin
	// updates are exempt, see docs/OPERATIONS.md): a scan still
	// running when it expires is cancelled mid-scan (the partial work
	// is accounted and freed) and answered with the
	// wire.DeadlineRefusal error. The clock starts when the request is
	// ADMITTED, not when it arrives — queue wait is bounded separately
	// by QueueTimeout. 0 disables the deadline.
	RequestTimeout time.Duration
}

// ServeStats is a snapshot of a NetServer's counters.
type ServeStats struct {
	// Accepted and Rejected count connections; Rejected ones were turned
	// away at the MaxConns cap.
	Accepted, Rejected int64
	// Active is the number of currently open connections.
	Active int64
	// Queries counts queries answered (each batch member counts once).
	Queries int64
	// Updates counts applied admin operations (adds and deletes).
	Updates int64
	// Retrievals counts answered PIR block queries (one per protocol
	// execution; a k-block document fetch counts k times).
	Retrievals int64
	// Errors counts protocol-level errors answered with a wire error
	// message (the connection survives those).
	Errors int64
	// QueryTime is the total server-side processing time across all
	// queries; MaxQueryTime is the slowest single query.
	QueryTime, MaxQueryTime time.Duration
	// Inflight is the number of requests executing right now; Queued is
	// the number parked in the admission queue right now; QueuedTotal
	// counts every request that ever had to queue.
	Inflight, Queued, QueuedTotal int64
	// QueueWait is the total time requests spent parked in the
	// admission queue; MaxQueueWait is the longest single wait.
	QueueWait, MaxQueueWait time.Duration
	// ShedQueueFull and ShedQueueTimeout count requests shed with the
	// wire.OverloadRefusal error because the queue was at capacity, or
	// because the request's queue wait exceeded QueueTimeout.
	ShedQueueFull, ShedQueueTimeout int64
	// Deadlines counts requests cancelled mid-scan by RequestTimeout
	// and answered with the wire.DeadlineRefusal error.
	Deadlines int64
	// Durable reports whether the served engine journals updates;
	// WALSeq / WALCheckpointSeq are its last journaled operation and
	// newest checkpoint, and CheckpointAge is the time since that
	// checkpoint landed. All zero on non-durable engines.
	Durable                  bool
	WALSeq, WALCheckpointSeq uint64
	CheckpointAge            time.Duration
	// ReplPrimarySeq and ReplLag surface a replica's staleness: the
	// primary's newest journaled operation at the last successful pull,
	// and how many operations this server still trails it by. Both zero
	// unless SetReplicaStatus wired a replication probe (ReplPrimarySeq
	// distinguishes "not a replica" from "replica with zero lag").
	ReplPrimarySeq, ReplLag uint64
	// PIRModMuls is the total modular multiplications spent serving PIR
	// block queries, including the partial work of cancelled scans —
	// the cost unit of the paper's Section 5.2 model, and the numerator
	// operators need to see whether batch amortization is actually
	// shrinking per-answer cost. PIRTableMuls is the subset spent on
	// per-query setup (squares, subset-product tables, Montgomery
	// conversions); each batch query carries exactly its own setup, so
	// these sums never double-count.
	PIRModMuls, PIRTableMuls int64
	// PIRRecursiveQueries counts recursive (two-level) block queries
	// answered — a subset of Retrievals. PIRRecursivePartials counts
	// the level-1-only partition answers served to cluster routers (a
	// subset of PIRRecursiveQueries); a plain client-facing server
	// reports it as zero.
	PIRRecursiveQueries, PIRRecursivePartials int64
	// RouterPartitions, RouterRetries and RouterFailovers are filled
	// only when the stats came from a cluster router: the partition
	// count behind it, per-partition attempts beyond the first, and
	// attempts answered by a non-primary endpoint. A plain NetServer
	// reports all three as zero.
	RouterPartitions, RouterRetries, RouterFailovers uint64
	// DecoyQueries counts decoy-marked query frames answered
	// (TypeDecoyQuery) — also included in Queries, since the server
	// does identical work for them.
	DecoyQueries int64
	// RiskAudited and RiskSkipped count query frames the per-session
	// risk audit scored and declined (non-embellished streams or
	// over-cap candidate spaces); both zero unless ServeConfig.RiskAudit
	// is on. RiskSumMicros is the audited frames' total observed risk
	// in micro-units: RiskSumMicros / 1e6 / RiskAudited is the serverwide
	// mean per-query risk.
	RiskAudited, RiskSkipped, RiskSumMicros int64
}

// NetServer serves the private-retrieval wire protocol for one Engine
// over any number of listeners and connections concurrently. The
// zero value is not usable; construct with Engine.NewNetServer.
type NetServer struct {
	engine           *Engine
	maxConns         int
	idle             time.Duration
	allowUpdates     bool
	allowRetrieval   bool
	allowReplication bool
	allowLexiconSync bool
	riskAudit        bool
	// pirOverride is ServeConfig.PIRWorkers (clamped); 0 defers to the
	// engine's Options.PIRWorkers at answer time. amortizeOverride is
	// ServeConfig.PIRBatchAmortize under the same contract.
	// recursiveOverride is ServeConfig.PIRRecursive, same contract.
	pirOverride       int
	amortizeOverride  int
	recursiveOverride int
	// adm is the bounded admission queue; nil when MaxInflight is 0
	// (admission control disabled).
	adm        *admission
	reqTimeout time.Duration
	// testHookAdmitted, when set, runs after a request clears admission
	// and before it executes — the test seam that makes slot occupancy
	// deterministic. Never set in production.
	testHookAdmitted func(typ byte)

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	shutdown  bool
	// replicaStatus, when set (SetReplicaStatus), reports the primary's
	// newest known sequence number for the staleness rows of the stats
	// surface. Guarded by mu.
	replicaStatus func() (uint64, bool)

	accepted   atomic.Int64
	rejected   atomic.Int64
	active     atomic.Int64
	queries    atomic.Int64
	updates    atomic.Int64
	retrievals atomic.Int64
	errs       atomic.Int64
	busyNs     atomic.Int64 // total processing time
	maxNs      atomic.Int64 // slowest single query
	inflight   atomic.Int64 // queries currently being processed

	queuedTotal    atomic.Int64
	queueWaitNs    atomic.Int64
	maxQueueWaitNs atomic.Int64
	shedFull       atomic.Int64
	shedTimeout    atomic.Int64
	deadlines      atomic.Int64

	pirModMuls   atomic.Int64
	pirTableMuls atomic.Int64

	pirRecQueries  atomic.Int64
	pirRecPartials atomic.Int64

	decoyQueries  atomic.Int64
	riskAudited   atomic.Int64
	riskSkipped   atomic.Int64
	riskSumMicros atomic.Int64
}

// NewNetServer builds a concurrent protocol server around the engine.
func (e *Engine) NewNetServer(cfg ServeConfig) *NetServer {
	maxConns := cfg.MaxConns
	if maxConns == 0 {
		maxConns = e.opts.MaxConns
	}
	if maxConns == 0 {
		maxConns = DefaultMaxConns
	}
	// Clamp the override to the validated Options.PIRWorkers range:
	// the engine value passed validation, but the ServeConfig override
	// arrives unchecked and an unbounded count would size a per-query
	// goroutine pool.
	pirOverride := cfg.PIRWorkers
	if pirOverride < -1 {
		pirOverride = -1
	}
	if pirOverride > maxPIRWorkers {
		pirOverride = maxPIRWorkers
	}
	amortizeOverride := cfg.PIRBatchAmortize
	if amortizeOverride < -1 {
		amortizeOverride = -1
	}
	if amortizeOverride > 1 {
		amortizeOverride = 1
	}
	recursiveOverride := cfg.PIRRecursive
	if recursiveOverride < -1 {
		recursiveOverride = -1
	}
	if recursiveOverride > 1 {
		recursiveOverride = 1
	}
	var adm *admission
	if cfg.MaxInflight != 0 {
		slots := cfg.MaxInflight
		if slots < 0 {
			slots = runtime.GOMAXPROCS(0)
		}
		depth := cfg.QueueDepth
		if depth <= 0 {
			depth = DefaultQueueDepth
		}
		timeout := cfg.QueueTimeout
		if timeout == 0 {
			timeout = DefaultQueueTimeout
		}
		adm = newAdmission(slots, depth, timeout)
	}
	return &NetServer{
		engine:            e,
		maxConns:          maxConns,
		idle:              cfg.IdleTimeout,
		allowUpdates:      cfg.AllowUpdates,
		allowRetrieval:    cfg.AllowRetrieval,
		allowReplication:  cfg.AllowReplication,
		allowLexiconSync:  cfg.AllowLexiconSync,
		riskAudit:         cfg.RiskAudit,
		pirOverride:       pirOverride,
		amortizeOverride:  amortizeOverride,
		recursiveOverride: recursiveOverride,
		adm:               adm,
		reqTimeout:        cfg.RequestTimeout,
		listeners:         make(map[net.Listener]struct{}),
		conns:             make(map[net.Conn]struct{}),
	}
}

// pirWorkers resolves the serving plan for one PIR answer: the
// ServeConfig override when set, else the engine's CURRENT plan —
// read atomically at answer time, so ConfigurePIRWorkers affects
// live servers.
func (s *NetServer) pirWorkers() int {
	if s.pirOverride != 0 {
		return s.pirOverride
	}
	return s.engine.livePIRWorkers()
}

// pirBatchAmortize resolves the batch-amortization switch for one
// batch frame: the ServeConfig override when set, else the engine's
// current knob.
func (s *NetServer) pirBatchAmortize() bool {
	if s.amortizeOverride != 0 {
		return s.amortizeOverride > 0
	}
	return s.engine.livePIRBatchAmortize()
}

// pirRecursive resolves the recursive-serving switch for one recursive
// frame: the ServeConfig override when set, else the engine's current
// knob.
func (s *NetServer) pirRecursive() bool {
	if s.recursiveOverride != 0 {
		return s.recursiveOverride > 0
	}
	return s.engine.livePIRRecursive()
}

// countPIRWork folds one answer's Stats into the server-wide mul
// counters — called on error paths too, so cancelled scans' partial
// work stays visible to work_fraction consumers.
func (s *NetServer) countPIRWork(st pir.Stats) {
	s.pirModMuls.Add(int64(st.ModMuls))
	s.pirTableMuls.Add(int64(st.TableMuls))
}

// Stats returns a snapshot of the server's counters.
func (s *NetServer) Stats() ServeStats {
	st := ServeStats{
		Accepted:             s.accepted.Load(),
		Rejected:             s.rejected.Load(),
		Active:               s.active.Load(),
		Queries:              s.queries.Load(),
		Updates:              s.updates.Load(),
		Retrievals:           s.retrievals.Load(),
		Errors:               s.errs.Load(),
		QueryTime:            time.Duration(s.busyNs.Load()),
		MaxQueryTime:         time.Duration(s.maxNs.Load()),
		Inflight:             s.inflight.Load(),
		QueuedTotal:          s.queuedTotal.Load(),
		QueueWait:            time.Duration(s.queueWaitNs.Load()),
		MaxQueueWait:         time.Duration(s.maxQueueWaitNs.Load()),
		ShedQueueFull:        s.shedFull.Load(),
		ShedQueueTimeout:     s.shedTimeout.Load(),
		Deadlines:            s.deadlines.Load(),
		PIRModMuls:           s.pirModMuls.Load(),
		PIRTableMuls:         s.pirTableMuls.Load(),
		PIRRecursiveQueries:  s.pirRecQueries.Load(),
		PIRRecursivePartials: s.pirRecPartials.Load(),
		DecoyQueries:         s.decoyQueries.Load(),
		RiskAudited:          s.riskAudited.Load(),
		RiskSkipped:          s.riskSkipped.Load(),
		RiskSumMicros:        s.riskSumMicros.Load(),
	}
	if s.adm != nil {
		st.Queued = int64(s.adm.queued())
	}
	if ws, ok := s.engine.WALStatus(); ok {
		st.Durable = true
		st.WALSeq = ws.Seq
		st.WALCheckpointSeq = ws.CheckpointSeq
		if !ws.LastCheckpointAt.IsZero() {
			st.CheckpointAge = time.Since(ws.LastCheckpointAt)
		}
	}
	s.mu.Lock()
	replicaStatus := s.replicaStatus
	s.mu.Unlock()
	if replicaStatus != nil {
		if primarySeq, ok := replicaStatus(); ok {
			st.ReplPrimarySeq = primarySeq
			if primarySeq > st.WALSeq {
				st.ReplLag = primarySeq - st.WALSeq
			}
		}
	}
	return st
}

// Serve accepts connections until the listener is closed (directly or
// via Shutdown), handling each connection in its own goroutine. It
// returns the listener's accept error — net.ErrClosed after a clean
// shutdown becomes nil.
func (s *NetServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		l.Close()
		return errors.New("embellish: server is shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.register(conn) {
			// Over the cap (or shutting down): tell the peer why before
			// hanging up, so clients fail with a useful error.
			s.rejected.Add(1)
			_ = wire.WriteError(conn, wire.OverloadRefusal+": connection limit reached; retry later")
			conn.Close()
			continue
		}
		s.accepted.Add(1)
		go func() {
			defer s.unregister(conn)
			_ = s.serveConn(conn, conn)
		}()
	}
}

func (s *NetServer) register(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return false
	}
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	s.active.Add(1)
	return true
}

func (s *NetServer) unregister(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.active.Add(-1)
	}
	s.mu.Unlock()
}

// Shutdown gracefully stops the server: close the listeners, wait for
// in-flight queries to finish (up to the context deadline), then close
// all connections. It returns the context's error when the deadline
// fired before the server drained.
func (s *NetServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	var err error
drain:
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break drain
		case <-tick.C:
		}
	}

	// Shed whatever is still parked in the admission queue (normally
	// empty after the drain — queued requests hold inflight) before
	// cutting the transports under them.
	if s.adm != nil {
		s.adm.abort()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// A graceful shutdown leaves a durable engine checkpoint-clean, so
	// the next boot loads the snapshot and replays nothing. Runs after
	// the drain: every acknowledged update is in the captured state.
	if cerr := s.engine.checkpointIfDirty(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// serveConn answers queries on one transport until EOF or a transport
// error. Malformed queries are answered with a protocol error message
// and the connection stays up; transport failures end the session.
// deadliner is the connection for deadline control, nil for plain
// io.ReadWriter transports.
func (s *NetServer) serveConn(rw io.ReadWriter, deadliner net.Conn) error {
	// The session's privacy audit, when enabled. Owned by this
	// goroutine — the protocol is strictly request-response per
	// connection, so observe() and answerRiskAudit never race.
	var sess *sessionAudit
	if s.riskAudit {
		sess = s.newSessionAudit()
	}
	for {
		if s.idle > 0 && deadliner != nil {
			_ = deadliner.SetReadDeadline(time.Now().Add(s.idle))
		}
		typ, body, err := wire.ReadMessage(rw)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		// The idle window measures PEER silence only. A request is now in
		// hand, so clear the read deadline before it queues or executes —
		// a request parked in the admission queue longer than IdleTimeout
		// must not leave a deadline meant for dead peers armed against its
		// connection. The loop re-arms a fresh deadline before its own
		// next read, but the stale expiry would be live for any read
		// issued between dispatch and that re-arm — the batch handlers
		// are one frame-read refactor away from exactly that.
		if s.idle > 0 && deadliner != nil {
			_ = deadliner.SetReadDeadline(time.Time{})
		}
		switch typ {
		case wire.TypeQuery, wire.TypeBatchQuery, wire.TypeDecoyQuery,
			wire.TypeAddDocs, wire.TypeDeleteDocs,
			wire.TypePIRParams, wire.TypePIRQuery, wire.TypePIRBatchQuery,
			wire.TypePIRRecursiveQuery:
			// TypeDecoyQuery is admitted exactly like TypeQuery: decoys
			// are real server work, and exempting them from admission
			// would make them an overload side channel.
			err = s.admitAndDispatch(rw, typ, body, sess)
		case wire.TypeLexiconSync:
			// Served without admission, like the other metadata surfaces:
			// the payload is cached bytes, and a client that cannot sync
			// cannot form queries at all.
			err = s.answerLexiconSync(rw, body)
		case wire.TypeRiskAudit:
			// Also without admission: the audit is a read of accumulated
			// counters, and it must stay readable while the server is
			// saturated — like the stats surface.
			err = s.answerRiskAudit(rw, body, sess)
		case wire.TypeStats:
			// Served without admission: the stats surface must stay
			// readable while the server is saturated — that is when an
			// operator most needs it.
			err = s.answerStats(rw, body)
		case wire.TypeWALPull:
			// Also served without admission: replicas are the failover
			// targets, and saturation is exactly when they must not be
			// starved into staleness. See replication.go.
			err = s.answerWALPull(rw, body)
		default:
			s.errs.Add(1)
			err = wire.WriteError(rw, fmt.Sprintf("%s %d", wire.UnknownTypeRefusal, typ))
		}
		if err != nil {
			return err
		}
	}
}

// admitAndDispatch runs one request through the admission queue (when
// enabled) and then the per-type handler. inflight is raised BEFORE
// acquiring a slot so a graceful Shutdown's drain covers queued
// requests too — a request parked in the queue is work the server has
// accepted responsibility for.
func (s *NetServer) admitAndDispatch(rw io.ReadWriter, typ byte, body []byte, sess *sessionAudit) error {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.adm != nil {
		wait, err := s.adm.acquire()
		if wait > 0 {
			s.queuedTotal.Add(1)
			ns := int64(wait)
			s.queueWaitNs.Add(ns)
			for {
				cur := s.maxQueueWaitNs.Load()
				if ns <= cur || s.maxQueueWaitNs.CompareAndSwap(cur, ns) {
					break
				}
			}
		}
		if err != nil {
			s.errs.Add(1)
			switch {
			case errors.Is(err, errQueueFull):
				s.shedFull.Add(1)
				return wire.WriteError(rw, wire.OverloadRefusal+": admission queue full; retry later")
			case errors.Is(err, errQueueTimeout):
				s.shedTimeout.Add(1)
				return wire.WriteError(rw, wire.OverloadRefusal+": queue wait exceeded; retry later")
			default: // errQueueClosed
				return wire.WriteError(rw, wire.OverloadRefusal+": server is shutting down")
			}
		}
		defer s.adm.release()
	}
	if s.testHookAdmitted != nil {
		s.testHookAdmitted(typ)
	}
	switch typ {
	case wire.TypeQuery, wire.TypeDecoyQuery:
		// inflight spans decode through response write (for batches,
		// the whole batch), so a graceful Shutdown never cuts a
		// connection between computing an answer and delivering it.
		return s.answerQuery(rw, body, sess, typ == wire.TypeDecoyQuery)
	case wire.TypeBatchQuery:
		return s.answerBatch(rw, body, sess)
	case wire.TypeAddDocs, wire.TypeDeleteDocs:
		// inflight also spans admin operations so a graceful Shutdown
		// never cuts a connection between applying an update and
		// acknowledging it.
		return s.answerAdmin(rw, typ, body)
	default: // wire.TypePIRParams, wire.TypePIRQuery, wire.TypePIRBatchQuery, wire.TypePIRRecursiveQuery
		return s.answerRetrieval(rw, typ, body)
	}
}

// requestCtx starts the server-side deadline for one admitted request.
// The clock starts here — after admission — so queue wait never eats
// into a request's execution budget (QueueTimeout bounds that wait
// separately).
func (s *NetServer) requestCtx() (context.Context, context.CancelFunc) {
	if s.reqTimeout > 0 {
		return context.WithTimeout(context.Background(), s.reqTimeout)
	}
	return context.Background(), func() {}
}

// process runs one embellished query through the engine's configured
// pipeline, timing it into the server counters. The caller (serveConn)
// holds the inflight count for the whole message exchange.
func (s *NetServer) process(ctx context.Context, q *core.Query) (*core.Response, core.Stats, error) {
	start := time.Now()
	resp, st, err := s.engine.processCoreCtx(ctx, q)
	elapsed := time.Since(start)
	s.queries.Add(1)
	s.busyNs.Add(int64(elapsed))
	for {
		cur := s.maxNs.Load()
		if int64(elapsed) <= cur || s.maxNs.CompareAndSwap(cur, int64(elapsed)) {
			break
		}
	}
	return resp, st, err
}

// deadlineError answers one deadline-cancelled request with the typed
// DeadlineRefusal wire error (the connection stays up) and counts it.
func (s *NetServer) deadlineError(rw io.ReadWriter, detail string) error {
	s.deadlines.Add(1)
	s.errs.Add(1)
	return wire.WriteError(rw, wire.DeadlineRefusal+": "+detail)
}

// isCtxErr reports whether err is the context's own cancellation —
// the signal that the scan was cut short by the server deadline, as
// opposed to failing on its own.
func isCtxErr(ctx context.Context, err error) bool {
	if err == nil {
		return false
	}
	// Sentinel check rather than comparing against ctx.Err(): a scan
	// stopped by its wall-clock deadline check reports DeadlineExceeded
	// before the context's own timer has necessarily fired.
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *NetServer) answerQuery(rw io.ReadWriter, body []byte, sess *sessionAudit, decoy bool) error {
	q, err := wire.DecodeQuery(body)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	if decoy {
		s.decoyQueries.Add(1)
	}
	sess.observe(q, decoy)
	ctx, cancel := s.requestCtx()
	defer cancel()
	resp, stats, err := s.process(ctx, q)
	if err != nil {
		if isCtxErr(ctx, err) {
			return s.deadlineError(rw, fmt.Sprintf("query cancelled after %d postings", stats.Postings))
		}
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	return wire.WriteResponse(rw, resp, stats)
}

// answerAdmin applies one online corpus update — behind the opt-in
// AllowUpdates flag — and acknowledges with the resulting corpus shape.
// Rejected and malformed requests are answered with a wire error and
// the connection stays up.
func (s *NetServer) answerAdmin(rw io.ReadWriter, typ byte, body []byte) error {
	if !s.allowUpdates {
		s.errs.Add(1)
		return wire.WriteError(rw, "live updates are disabled on this server")
	}
	var err error
	switch typ {
	case wire.TypeAddDocs:
		var dts []wire.DocText
		if dts, err = wire.DecodeAddDocs(body); err == nil {
			docs := make([]Document, len(dts))
			for i, d := range dts {
				docs[i] = Document{ID: int(d.ID), Text: d.Text}
			}
			err = s.engine.AddDocuments(docs)
		}
	case wire.TypeDeleteDocs:
		var ids []uint32
		if ids, err = wire.DecodeDeleteDocs(body); err == nil {
			del := make([]int, len(ids))
			for i, id := range ids {
				del[i] = int(id)
			}
			err = s.engine.DeleteDocuments(del)
		}
	}
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	s.updates.Add(1)
	// On durable engines, fold the journal into a checkpoint in the
	// background once the Durability thresholds are crossed — bounding
	// both log growth and the next restart's replay time. Single-flight
	// and off the request path, so the ack below never waits on it.
	s.engine.maybeCheckpointAsync()
	// One snapshot for the whole ack, so the (docs, segments) pair is
	// internally consistent even when other updates or merges land
	// between the apply and the ack.
	snap := s.engine.Snapshot()
	return wire.WriteAdminOK(rw, snap.NumDocs(), snap.NumSegments())
}

// answerRetrieval serves the private document-fetch messages — behind
// the opt-in AllowRetrieval flag — from one store snapshot per
// message. Refusals and malformed queries are answered with a wire
// error and the connection stays up, matching the admin path.
func (s *NetServer) answerRetrieval(rw io.ReadWriter, typ byte, body []byte) error {
	if !s.allowRetrieval {
		s.errs.Add(1)
		return wire.WriteError(rw, "private document retrieval is disabled on this server")
	}
	snap, err := s.engine.storeSnapshot()
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, "this server stores no documents")
	}
	switch typ {
	case wire.TypePIRParams:
		if len(body) != 0 {
			s.errs.Add(1)
			return wire.WriteError(rw, "params request carries no body")
		}
		return wire.WritePIRParams(rw, snap.Params())
	case wire.TypePIRRecursiveQuery:
		// The recursive layout is gated separately from AllowRetrieval:
		// the refusal reuses the frozen UnknownTypeRefusal prefix, so a
		// client cannot distinguish "knob off" from "server predates the
		// frame" and falls back to flat queries in both cases.
		if !s.pirRecursive() {
			s.errs.Add(1)
			return wire.WriteError(rw, fmt.Sprintf("%s %d: recursive retrieval is disabled on this server", wire.UnknownTypeRefusal, typ))
		}
		qs, err := wire.DecodePIRRecursiveQuery(body)
		if err != nil {
			s.errs.Add(1)
			return wire.WriteError(rw, err.Error())
		}
		ctx, cancel := s.requestCtx()
		defer cancel()
		answers, stats, err := answerPIRRecursiveCtx(ctx, snap, qs, s.pirWorkers())
		for _, st := range stats {
			s.countPIRWork(st)
		}
		if err != nil {
			if isCtxErr(ctx, err) {
				return s.deadlineError(rw, "recursive scan cancelled")
			}
			s.errs.Add(1)
			return wire.WriteError(rw, err.Error())
		}
		// Answers reuse the batch-response frame, streamed in batch
		// order like the amortized flat path.
		for i, ans := range answers {
			s.retrievals.Add(1)
			s.pirRecQueries.Add(1)
			if len(qs[i].Cols) == 0 {
				s.pirRecPartials.Add(1)
			}
			if err := wire.WritePIRBatchAnswer(rw, i, ans); err != nil {
				return err
			}
		}
		return nil
	case wire.TypePIRBatchQuery:
		// One snapshot answers the whole batch, so a pipelined fetch
		// reads an internally consistent corpus prefix. Answers stream
		// back one frame each as they are computed; a failing block is
		// answered with a wire error that ends the batch (the
		// connection survives, matching the single-query path).
		qs, err := wire.DecodePIRBatchQuery(body)
		if err != nil {
			s.errs.Add(1)
			return wire.WriteError(rw, err.Error())
		}
		// One deadline covers the whole batch frame, matching the
		// search-batch path.
		ctx, cancel := s.requestCtx()
		defer cancel()
		if workers := s.pirWorkers(); s.pirBatchAmortize() && workers != 0 && len(qs) > 1 {
			return s.answerPIRBatchAmortized(rw, ctx, snap, qs, workers)
		}
		for i, q := range qs {
			ans, st, err := answerPIRCtx(ctx, snap, q, s.pirWorkers())
			s.countPIRWork(st)
			if err != nil {
				if isCtxErr(ctx, err) {
					return s.deadlineError(rw, fmt.Sprintf("batch cancelled in block %d", i))
				}
				s.errs.Add(1)
				return wire.WriteError(rw, fmt.Sprintf("batch block %d: %v", i, err))
			}
			s.retrievals.Add(1)
			if err := wire.WritePIRBatchAnswer(rw, i, ans); err != nil {
				return err
			}
		}
		return nil
	default: // wire.TypePIRQuery
		q, err := wire.DecodePIRQuery(body)
		if err != nil {
			s.errs.Add(1)
			return wire.WriteError(rw, err.Error())
		}
		ctx, cancel := s.requestCtx()
		defer cancel()
		ans, st, err := answerPIRCtx(ctx, snap, q, s.pirWorkers())
		s.countPIRWork(st)
		if err != nil {
			if isCtxErr(ctx, err) {
				return s.deadlineError(rw, "block scan cancelled")
			}
			s.errs.Add(1)
			return wire.WriteError(rw, err.Error())
		}
		s.retrievals.Add(1)
		return wire.WritePIRAnswer(rw, ans)
	}
}

// answerPIRBatchAmortized serves one TypePIRBatchQuery frame through
// the one-pass multi-query scan. The wire semantics are unchanged:
// answers stream back strictly in batch order, one frame each, and a
// failure is answered with the same wire errors the per-query path
// produces. What changes is execution — queries of equal width are
// computed together in a single pass over the store (prefix addressing
// under churn means widths MAY differ inside one frame, so positions
// are grouped by width first), which also means a deadline cancels the
// whole frame before any answer streams rather than between blocks.
// Every group's per-query Stats are counted even on failure.
func (s *NetServer) answerPIRBatchAmortized(rw io.ReadWriter, ctx context.Context, snap *docstore.Snapshot, qs []*pir.Query, workers int) error {
	var widths []int
	byWidth := make(map[int][]int)
	for i, q := range qs {
		w := len(q.Values)
		if _, ok := byWidth[w]; !ok {
			widths = append(widths, w)
		}
		byWidth[w] = append(byWidth[w], i)
	}
	answers := make([]*pir.Answer, len(qs))
	for _, w := range widths {
		idx := byWidth[w]
		sub := make([]*pir.Query, len(idx))
		for j, i := range idx {
			sub[j] = qs[i]
		}
		got, stats, err := answerPIRMultiCtx(ctx, snap, sub, workers)
		for _, st := range stats {
			s.countPIRWork(st)
		}
		if err != nil {
			if isCtxErr(ctx, err) {
				return s.deadlineError(rw, fmt.Sprintf("batch cancelled in block %d", idx[0]))
			}
			s.errs.Add(1)
			return wire.WriteError(rw, fmt.Sprintf("batch block %d: %v", idx[0], err))
		}
		for j, i := range idx {
			answers[i] = got[j]
		}
	}
	for i, ans := range answers {
		s.retrievals.Add(1)
		if err := wire.WritePIRBatchAnswer(rw, i, ans); err != nil {
			return err
		}
	}
	return nil
}

func (s *NetServer) answerBatch(rw io.ReadWriter, body []byte, sess *sessionAudit) error {
	qs, err := wire.DecodeBatchQuery(body)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	for _, q := range qs {
		sess.observe(q, false)
	}
	// One deadline covers the whole batch: the peer sent one frame and
	// gets one response, so the batch is the unit of server work.
	ctx, cancel := s.requestCtx()
	defer cancel()
	resps := make([]*core.Response, len(qs))
	stats := make([]core.Stats, len(qs))
	for i, q := range qs {
		resp, st, err := s.process(ctx, q)
		if err != nil {
			if isCtxErr(ctx, err) {
				return s.deadlineError(rw, fmt.Sprintf("batch cancelled in query %d", i))
			}
			s.errs.Add(1)
			return wire.WriteError(rw, fmt.Sprintf("batch query %d: %v", i, err))
		}
		resps[i] = resp
		stats[i] = st
	}
	return wire.WriteBatchResponse(rw, resps, stats)
}

// Serve accepts connections on a default-configured NetServer. Kept as
// the simple entry point; deployments needing connection limits,
// timeouts or graceful shutdown construct a NetServer explicitly.
func (e *Engine) Serve(l net.Listener) error {
	return e.NewNetServer(ServeConfig{}).Serve(l)
}

// ServeConn answers queries on one transport until EOF or a transport
// error, without connection accounting — the transport is managed by
// the caller.
func (e *Engine) ServeConn(conn io.ReadWriter) error {
	deadliner, _ := conn.(net.Conn)
	return e.NewNetServer(ServeConfig{}).serveConn(conn, deadliner)
}

// Client-visible classifications of a server refusal. Both are
// transient: the request was not executed (or was cancelled mid-scan),
// the connection survives, and a retry — after backoff for
// ErrOverloaded — may succeed.
var (
	// ErrOverloaded is wrapped by client calls when the server shed the
	// request under admission control (queue full, queue timeout, or
	// connection cap).
	ErrOverloaded = errors.New("embellish: server overloaded")
	// ErrRemoteDeadline is wrapped by client calls when the server
	// cancelled the request mid-scan at its RequestTimeout.
	ErrRemoteDeadline = errors.New("embellish: server deadline exceeded")
)

// remoteError classifies one TypeError body from a server: typed
// overload and deadline refusals wrap the matching sentinel (so
// callers can errors.Is their way to a retry policy); everything else
// stays an opaque server error.
func remoteError(body []byte) error {
	msg := string(body)
	switch {
	case strings.HasPrefix(msg, wire.OverloadRefusal):
		// The sentinel's text already says "server overloaded"; keep
		// only the server's detail after the typed prefix.
		return fmt.Errorf("%w%s", ErrOverloaded, strings.TrimPrefix(msg, wire.OverloadRefusal))
	case strings.HasPrefix(msg, wire.DeadlineRefusal):
		return fmt.Errorf("%w%s", ErrRemoteDeadline, strings.TrimPrefix(msg, wire.DeadlineRefusal))
	case strings.HasPrefix(msg, wire.StaleLexiconRefusal):
		return fmt.Errorf("%w%s", ErrStaleLexicon, strings.TrimPrefix(msg, wire.StaleLexiconRefusal))
	default:
		return fmt.Errorf("embellish: server error: %s", msg)
	}
}

// SearchRemote runs one private query against a remote engine: Algorithm
// 3 locally, Algorithm 4 on the server, Algorithm 5 locally. The
// connection can be reused across calls.
func (c *Client) SearchRemote(conn io.ReadWriter, query string, k int) ([]Result, error) {
	eq, err := c.Embellish(query)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteQuery(conn, eq.inner); err != nil {
		return nil, fmt.Errorf("embellish: sending query: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, remoteError(body)
	case wire.TypeResponse:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	cands, _, err := wire.DecodeResponse(body)
	if err != nil {
		return nil, err
	}
	return c.decodeCandidates(cands, k)
}

// SearchRemoteBatch runs several private queries against a remote
// engine in one round-trip: every query is embellished locally, the
// batch travels as a single frame carrying the public key once, and the
// per-query rankings come back in order. Queries that cannot be
// embellished fail the whole batch (the caller knows exactly which —
// the error names the query index).
func (c *Client) SearchRemoteBatch(conn io.ReadWriter, queries []string, k int) ([][]Result, error) {
	if len(queries) == 0 {
		return nil, errors.New("embellish: empty batch")
	}
	qs := make([]*core.Query, len(queries))
	for i, query := range queries {
		eq, err := c.Embellish(query)
		if err != nil {
			return nil, fmt.Errorf("embellish: batch query %d: %w", i, err)
		}
		qs[i] = eq.inner
	}
	if err := wire.WriteBatchQuery(conn, qs); err != nil {
		return nil, fmt.Errorf("embellish: sending batch: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading batch response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, remoteError(body)
	case wire.TypeBatchResponse:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	cands, _, err := wire.DecodeBatchResponse(body)
	if err != nil {
		return nil, err
	}
	if len(cands) != len(queries) {
		return nil, fmt.Errorf("embellish: batch response has %d results for %d queries", len(cands), len(queries))
	}
	out := make([][]Result, len(cands))
	for i := range cands {
		res, err := c.decodeCandidates(cands[i], k)
		if err != nil {
			return nil, fmt.Errorf("embellish: batch result %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// AdminStatus reports a remote server's corpus shape after an applied
// online update.
type AdminStatus struct {
	// LiveDocs is the server's live (non-deleted) document count.
	LiveDocs int
	// Segments is the server's live-index segment count.
	Segments int
}

// AddDocumentsRemote adds documents to a remote engine that was started
// with updates enabled (ServeConfig.AllowUpdates). Document ids must
// continue the remote engine's dense sequence, exactly as with
// Engine.AddDocuments; when both endpoints share an engine file, the
// local engine's NextDocID supplies them. Ingests larger than one
// admin frame (wire.MaxAdminDocs documents) are batched across frames;
// each frame is applied atomically on the server, so an error partway
// through a batched ingest means the earlier frames ARE applied — the
// returned status always reflects the server's state after the last
// acknowledged frame. The connection can be reused for queries before
// and after.
func AddDocumentsRemote(conn io.ReadWriter, docs []Document) (AdminStatus, error) {
	if len(docs) == 0 {
		return AdminStatus{}, errors.New("embellish: no documents to add")
	}
	dts := make([]wire.DocText, len(docs))
	for i, d := range docs {
		if d.ID < 0 || d.ID > 1<<31-1 {
			return AdminStatus{}, fmt.Errorf("embellish: document id %d out of range", d.ID)
		}
		dts[i] = wire.DocText{ID: uint32(d.ID), Text: d.Text}
	}
	// Chunk by count AND by cumulative text bytes: every document can be
	// individually valid yet a MaxAdminDocs-sized frame of large ones
	// would blow the wire frame cap.
	const maxChunkBytes = 16 << 20
	var st AdminStatus
	sent := 0
	for start := 0; start < len(dts); {
		end, bytes := start, 0
		for end < len(dts) && end-start < wire.MaxAdminDocs {
			bytes += len(dts[end].Text)
			if end > start && bytes > maxChunkBytes {
				break
			}
			end++
		}
		chunk := dts[start:end]
		next, err := adminRoundTrip(conn, func() error { return wire.WriteAddDocs(conn, chunk) })
		if err != nil {
			if sent > 0 {
				return st, fmt.Errorf("embellish: %d of %d documents applied: %w", sent, len(dts), err)
			}
			return st, err
		}
		st = next
		sent += len(chunk)
		start = end
	}
	return st, nil
}

// DeleteDocumentsRemote tombstones documents on a remote engine that
// was started with updates enabled (ServeConfig.AllowUpdates). Deletes
// larger than one admin frame batch across frames like
// AddDocumentsRemote.
func DeleteDocumentsRemote(conn io.ReadWriter, ids []int) (AdminStatus, error) {
	if len(ids) == 0 {
		return AdminStatus{}, errors.New("embellish: no documents to delete")
	}
	u := make([]uint32, len(ids))
	for i, id := range ids {
		if id < 0 || id > 1<<31-1 {
			return AdminStatus{}, fmt.Errorf("embellish: document id %d out of range", id)
		}
		u[i] = uint32(id)
	}
	var st AdminStatus
	for start := 0; start < len(u); start += wire.MaxAdminDocs {
		chunk := u[start:min(start+wire.MaxAdminDocs, len(u))]
		next, err := adminRoundTrip(conn, func() error { return wire.WriteDeleteDocs(conn, chunk) })
		if err != nil {
			if start > 0 {
				return st, fmt.Errorf("embellish: %d of %d deletions applied: %w", start, len(u), err)
			}
			return st, err
		}
		st = next
	}
	return st, nil
}

// adminRoundTrip sends one admin frame and reads the acknowledgement.
func adminRoundTrip(conn io.ReadWriter, write func() error) (AdminStatus, error) {
	if err := write(); err != nil {
		return AdminStatus{}, fmt.Errorf("embellish: sending update: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return AdminStatus{}, fmt.Errorf("embellish: reading update response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return AdminStatus{}, remoteError(body)
	case wire.TypeAdminOK:
	default:
		return AdminStatus{}, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	live, segs, err := wire.DecodeAdminOK(body)
	if err != nil {
		return AdminStatus{}, err
	}
	return AdminStatus{LiveDocs: live, Segments: segs}, nil
}

// decodeCandidates runs Algorithm 5 over wire candidates.
func (c *Client) decodeCandidates(cands []wire.Candidate, k int) ([]Result, error) {
	resp := &core.Response{}
	for _, cand := range cands {
		resp.Docs = append(resp.Docs, core.DocScore{Doc: cand.Doc, Enc: cand.Enc})
	}
	ranked, err := c.inner.PostFilter(resp, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ranked))
	for i, r := range ranked {
		out[i] = Result{DocID: int(r.Doc), Score: r.Score}
	}
	return out, nil
}

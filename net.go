package embellish

import (
	"errors"
	"fmt"
	"io"
	"net"

	"embellish/internal/core"
	"embellish/internal/wire"
)

// Network deployment: the paper's protocol is client-server — the
// client embellishes and decrypts, the engine only ever sees the
// embellished query. Serve turns an Engine into a long-running service
// speaking the internal/wire framing; SearchRemote runs the client side
// of one query against any such service. Both endpoints typically load
// the same engine file (Save/LoadEngine), which is how they come to
// agree on the bucket organization.

// Serve accepts connections until the listener is closed, handling each
// connection concurrently. It returns the listener's accept error
// (net.ErrClosed after a clean shutdown).
func (e *Engine) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = e.ServeConn(conn)
		}()
	}
}

// ServeConn answers queries on one connection until EOF or a transport
// error. Malformed queries are answered with a protocol error message
// and the connection stays up; transport failures end the session.
func (e *Engine) ServeConn(conn io.ReadWriter) error {
	for {
		typ, body, err := wire.ReadMessage(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if typ != wire.TypeQuery {
			if werr := wire.WriteError(conn, fmt.Sprintf("unexpected message type %d", typ)); werr != nil {
				return werr
			}
			continue
		}
		q, err := wire.DecodeQuery(body)
		if err != nil {
			if werr := wire.WriteError(conn, err.Error()); werr != nil {
				return werr
			}
			continue
		}
		resp, stats, err := e.server.Process(q)
		if err != nil {
			if werr := wire.WriteError(conn, err.Error()); werr != nil {
				return werr
			}
			continue
		}
		if err := wire.WriteResponse(conn, resp, stats); err != nil {
			return err
		}
	}
}

// SearchRemote runs one private query against a remote engine: Algorithm
// 3 locally, Algorithm 4 on the server, Algorithm 5 locally. The
// connection can be reused across calls.
func (c *Client) SearchRemote(conn io.ReadWriter, query string, k int) ([]Result, error) {
	eq, err := c.Embellish(query)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteQuery(conn, eq.inner); err != nil {
		return nil, fmt.Errorf("embellish: sending query: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("embellish: reading response: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return nil, fmt.Errorf("embellish: server error: %s", body)
	case wire.TypeResponse:
	default:
		return nil, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	cands, _, err := wire.DecodeResponse(body)
	if err != nil {
		return nil, err
	}
	resp := &core.Response{}
	for _, cand := range cands {
		resp.Docs = append(resp.Docs, core.DocScore{Doc: cand.Doc, Enc: cand.Enc})
	}
	ranked, err := c.inner.PostFilter(resp, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ranked))
	for i, r := range ranked {
		out[i] = Result{DocID: int(r.Doc), Score: r.Score}
	}
	return out, nil
}

//go:build race

package embellish

// raceEnabled reports that the race detector is compiled in. The
// wall-clock overshoot assertions in cancel_test.go are skipped under
// -race — instrumentation stretches the gaps between deadline polls
// unboundedly — and the promptness property is carried by the
// deterministic clock harness instead.
const raceEnabled = true

package embellish

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"embellish/internal/detrand"
)

// TestNetServerDurability drives the server-side durability lifecycle:
// remote admin ops are journaled, the ops-threshold triggers a
// BACKGROUND checkpoint, graceful Shutdown leaves the directory
// checkpoint-clean, and an abrupt restart (recovering the directory
// as-is) serves the exact corpus remote clients saw acknowledged.
func TestNetServerDurability(t *testing.T) {
	dir := t.TempDir()
	lemmas := miniLemmas()
	texts := make(map[int]string, 20)
	docs := make([]Document, 20)
	for i := range docs {
		texts[i] = storeDocText(i, lemmas)
		docs[i] = Document{ID: i, Text: texts[i]}
	}
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.StoreDocuments = true
	opts.BlockSize = 32
	opts.RetrievalKeyBits = 96
	opts.Durability = Durability{Dir: dir, Fsync: FsyncEveryRecord, CheckpointEveryOps: 2, CheckpointEveryBytes: -1}
	e, err := NewEngine(MiniLexicon(), docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	srv := e.NewNetServer(ServeConfig{AllowUpdates: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Three remote adds + one delete cross the 2-op threshold twice.
	for i := 0; i < 3; i++ {
		id := e.NextDocID()
		texts[id] = storeDocText(id, lemmas)
		if _, err := AddDocumentsRemote(conn, []Document{{ID: id, Text: texts[id]}}); err != nil {
			t.Fatalf("remote add %d: %v", i, err)
		}
	}
	if _, err := DeleteDocumentsRemote(conn, []int{5}); err != nil {
		t.Fatal(err)
	}
	delete(texts, 5)

	// The background checkpoint is asynchronous; wait for it to fold
	// the journal below the threshold.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := e.WALStatus()
		if !ok {
			t.Fatal("server engine is not durable")
		}
		if st.LastAsyncError != "" {
			t.Fatalf("background checkpoint failed: %s", st.LastAsyncError)
		}
		if st.CheckpointSeq > 0 && st.OpsSinceCheckpoint < 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint never fired: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One more journaled op, then graceful Shutdown: the drain
	// checkpoint must leave nothing to replay.
	id := e.NextDocID()
	texts[id] = storeDocText(id, lemmas)
	if _, err := AddDocumentsRemote(conn, []Document{{ID: id, Text: texts[id]}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st, _ := e.WALStatus()
	if st.Seq != 5 || st.CheckpointSeq != 5 || st.OpsSinceCheckpoint != 0 {
		t.Fatalf("after graceful shutdown: %+v, want checkpoint at seq 5", st)
	}

	// Abrupt-restart equivalence: recover the directory as a fresh
	// process would and compare the corpus and rankings end to end.
	r, err := OpenDurable(copyDurableDir(t, dir), Options{})
	if err != nil {
		t.Fatalf("restart recovery: %v", err)
	}
	defer r.Close()
	if rst, _ := r.WALStatus(); rst.Seq != 5 {
		t.Fatalf("restart recovered seq %d, want 5", rst.Seq)
	}
	assertCorpusEquals(t, r, texts)

	// And it serves remotely: rank + PIR fetch through a fresh server.
	srv2 := r.NewNetServer(ServeConfig{AllowRetrieval: true})
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(l2) }()
	conn2, err := net.Dial("tcp", l2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	c, err := r.NewClient(detrand.New("durable-net-client"))
	if err != nil {
		t.Fatal(err)
	}
	q := lemmas[1] + " " + lemmas[6]
	remote, err := c.SearchRemote(conn2, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.PlaintextSearch(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var scored []Result
	for _, res := range remote {
		if res.Score > 0 {
			scored = append(scored, res)
		}
	}
	if fmt.Sprint(scored) != fmt.Sprint(plain) {
		t.Fatalf("post-restart remote ranking %v != plaintext %v", scored, plain)
	}
	winner := scored[0].DocID
	got, _, err := c.FetchDocumentsRemote(conn2, []int{winner})
	if err != nil || string(got[0]) != texts[winner] {
		t.Fatalf("post-restart PIR fetch %d = %q (%v), want %q", winner, got, err, texts[winner])
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
}

package embellish

import (
	"bytes"
	"strings"
	"testing"

	"embellish/internal/detrand"
)

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	e, c := testEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != e.NumDocs() ||
		loaded.NumSearchableTerms() != e.NumSearchableTerms() ||
		loaded.NumBuckets() != e.NumBuckets() {
		t.Fatalf("shape mismatch after load: %d/%d docs, %d/%d terms, %d/%d buckets",
			loaded.NumDocs(), e.NumDocs(),
			loaded.NumSearchableTerms(), e.NumSearchableTerms(),
			loaded.NumBuckets(), e.NumBuckets())
	}

	// A query embellished against the ORIGINAL engine must process
	// identically on the LOADED engine: that is the operational point of
	// persistence (client and server share one organization).
	query := e.lex.db.Lemma(e.searchable[2]) + " " + e.lex.db.Lemma(e.searchable[7])
	q, err := c.Embellish(query)
	if err != nil {
		t.Fatal(err)
	}
	respA, err := e.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	respB, err := loaded.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := c.Decode(respA, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.Decode(respB, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("result sizes differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}

	// And a fresh client against the loaded engine still satisfies
	// Claim 1 end to end.
	c2, err := loaded.NewClient(detrand.New("persist-client"))
	if err != nil {
		t.Fatal(err)
	}
	private, err := c2.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := loaded.PlaintextSearch(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if private[i] != plain[i] {
			t.Fatalf("loaded engine rank %d: %+v vs %+v", i, private[i], plain[i])
		}
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("not an engine")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadEngine(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadEngineRejectsCorruptSection(t *testing.T) {
	e, _ := testEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Damage a byte inside the first (lexicon) section payload.
	data[64] ^= 0xaa
	if _, err := LoadEngine(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt engine file accepted")
	}
}

func TestLoadEngineRejectsTruncation(t *testing.T) {
	e, _ := testEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, 30, buf.Len() / 2} {
		if _, err := LoadEngine(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestV1EngineFilesStillLoad writes the legacy single-index format and
// checks it loads through the compat path as a one-segment live engine
// with identical rankings — the upgrade guarantee for files produced
// before the segmented index existed.
func TestV1EngineFilesStillLoad(t *testing.T) {
	e, c := testEngine(t)
	var buf bytes.Buffer
	if err := e.saveV1(&buf); err != nil {
		t.Fatalf("saveV1: %v", err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadEngine(v1): %v", err)
	}
	if loaded.NumSegments() != 1 {
		t.Fatalf("v1 engine loaded as %d segments, want 1", loaded.NumSegments())
	}
	if loaded.NumDocs() != e.NumDocs() || loaded.NextDocID() != e.NextDocID() {
		t.Fatalf("v1 shape mismatch: %d/%d docs, next %d/%d",
			loaded.NumDocs(), e.NumDocs(), loaded.NextDocID(), e.NextDocID())
	}
	query := e.lex.db.Lemma(e.searchable[2]) + " " + e.lex.db.Lemma(e.searchable[7])
	q, err := c.Embellish(query)
	if err != nil {
		t.Fatal(err)
	}
	respA, err := e.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	respB, err := loaded.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := c.Decode(respA, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.Decode(respB, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("result sizes differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	// A v1-loaded engine accepts online updates immediately.
	if err := loaded.AddDocuments([]Document{{ID: loaded.NextDocID(), Text: query}}); err != nil {
		t.Fatalf("AddDocuments on v1-loaded engine: %v", err)
	}
}

// TestSaveLoadLiveStateRoundTrip persists an engine mid-life — several
// segments and tombstones — and checks the loaded engine reproduces the
// exact corpus state and rankings, and keeps accepting updates.
func TestSaveLoadLiveStateRoundTrip(t *testing.T) {
	e, c := liveTestEngine(t, -1)
	if err := e.AddDocuments(moreDocs(e, 10, 3)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddDocuments(moreDocs(e, 5, 8)); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteDocuments([]int{2, 121, 130}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A mid-life engine cannot go back to v1.
	if err := e.saveV1(&bytes.Buffer{}); err == nil {
		t.Fatal("saveV1 accepted a multi-segment engine")
	}

	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadEngine(v2): %v", err)
	}
	if loaded.NumSegments() != e.NumSegments() || loaded.NumDocs() != e.NumDocs() || loaded.NextDocID() != e.NextDocID() {
		t.Fatalf("live shape mismatch: segments %d/%d, docs %d/%d, next %d/%d",
			loaded.NumSegments(), e.NumSegments(), loaded.NumDocs(), e.NumDocs(),
			loaded.NextDocID(), e.NextDocID())
	}
	query := liveQueries(e)[2]
	want, err := e.PlaintextSearch(query, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PlaintextSearch(query, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("plaintext sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Queries embellished against the original engine process
	// identically on the loaded one, and deleted ids stay dead.
	q, err := c.Embellish(query)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := loaded.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Decode(resp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res[i].DocID != want[i].DocID || res[i].Score != want[i].Score {
			t.Fatalf("loaded private rank %d: %+v vs %+v", i, res[i], want[i])
		}
	}
	if err := loaded.DeleteDocuments([]int{121}); err == nil {
		t.Fatal("loaded engine resurrected a deleted id")
	}
	if err := loaded.AddDocuments([]Document{{ID: loaded.NextDocID(), Text: query}}); err != nil {
		t.Fatalf("AddDocuments on loaded engine: %v", err)
	}
}

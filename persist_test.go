package embellish

import (
	"bytes"
	"strings"
	"testing"

	"embellish/internal/detrand"
)

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	e, c := testEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != e.NumDocs() ||
		loaded.NumSearchableTerms() != e.NumSearchableTerms() ||
		loaded.NumBuckets() != e.NumBuckets() {
		t.Fatalf("shape mismatch after load: %d/%d docs, %d/%d terms, %d/%d buckets",
			loaded.NumDocs(), e.NumDocs(),
			loaded.NumSearchableTerms(), e.NumSearchableTerms(),
			loaded.NumBuckets(), e.NumBuckets())
	}

	// A query embellished against the ORIGINAL engine must process
	// identically on the LOADED engine: that is the operational point of
	// persistence (client and server share one organization).
	query := e.lex.db.Lemma(e.searchable[2]) + " " + e.lex.db.Lemma(e.searchable[7])
	q, err := c.Embellish(query)
	if err != nil {
		t.Fatal(err)
	}
	respA, err := e.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	respB, err := loaded.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := c.Decode(respA, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.Decode(respB, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("result sizes differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}

	// And a fresh client against the loaded engine still satisfies
	// Claim 1 end to end.
	c2, err := loaded.NewClient(detrand.New("persist-client"))
	if err != nil {
		t.Fatal(err)
	}
	private, err := c2.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := loaded.PlaintextSearch(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if private[i] != plain[i] {
			t.Fatalf("loaded engine rank %d: %+v vs %+v", i, private[i], plain[i])
		}
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(strings.NewReader("not an engine")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadEngine(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadEngineRejectsCorruptSection(t *testing.T) {
	e, _ := testEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Damage a byte inside the first (lexicon) section payload.
	data[64] ^= 0xaa
	if _, err := LoadEngine(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt engine file accepted")
	}
}

func TestLoadEngineRejectsTruncation(t *testing.T) {
	e, _ := testEngine(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, 30, buf.Len() / 2} {
		if _, err := LoadEngine(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

package embellish

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"embellish/internal/detrand"
	"embellish/internal/wire"
)

// shardedTestEngine builds an engine with the full concurrent pipeline
// enabled: document sharding, fixed-base precomputation, and the
// worker pool.
func shardedTestEngine(t *testing.T) (*Engine, *Client) {
	t.Helper()
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.Shards = 4
	opts.PrecomputeWindow = -1
	opts.Parallelism = -1
	e, err := NewEngine(MiniLexicon(), demoDocs(t), opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	c, err := e.NewClient(detrand.New("concurrency-test"))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return e, c
}

// testQueries returns distinct single- and multi-term queries drawn
// from the engine's searchable dictionary.
func testQueries(e *Engine, n int) []string {
	out := make([]string, n)
	for i := range out {
		a := e.lex.db.Lemma(e.searchable[(2*i)%len(e.searchable)])
		b := e.lex.db.Lemma(e.searchable[(2*i+7)%len(e.searchable)])
		out[i] = a + " " + b
	}
	return out
}

// TestEngineProcessConcurrent drives parallel Engine.Process calls on
// one sharded engine; under -race this is the data-race check for the
// shared sharded view, fixed-base tables and stats plumbing. Every
// concurrent private ranking must match PlaintextSearch (Claim 1).
func TestEngineProcessConcurrent(t *testing.T) {
	e, c := shardedTestEngine(t)
	queries := testQueries(e, 8)

	type prepared struct {
		q     *Query
		query string
		want  []Result
	}
	jobs := make([]prepared, len(queries))
	for i, query := range queries {
		q, err := c.Embellish(query)
		if err != nil {
			t.Fatalf("embellish %q: %v", query, err)
		}
		want, err := e.PlaintextSearch(query, 10)
		if err != nil {
			t.Fatalf("plaintext %q: %v", query, err)
		}
		jobs[i] = prepared{q: q, query: query, want: want}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*3)
	for round := 0; round < 3; round++ {
		for _, jb := range jobs {
			wg.Add(1)
			go func(jb prepared) {
				defer wg.Done()
				resp, err := e.Process(jb.q)
				if err != nil {
					errs <- fmt.Errorf("%q: %v", jb.query, err)
					return
				}
				got, err := c.Decode(resp, 10)
				if err != nil {
					errs <- fmt.Errorf("%q: decode: %v", jb.query, err)
					return
				}
				if len(got) != len(jb.want) {
					errs <- fmt.Errorf("%q: %d results, want %d", jb.query, len(got), len(jb.want))
					return
				}
				for i := range got {
					if got[i] != jb.want[i] {
						errs <- fmt.Errorf("%q rank %d: private %+v plaintext %+v", jb.query, i, got[i], jb.want[i])
						return
					}
				}
			}(jb)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestNetServerConcurrentClients drives >= 8 simultaneous remote
// searches through a NetServer over real TCP, each client with its own
// key pair, and checks every private ranking against PlaintextSearch.
func TestNetServerConcurrentClients(t *testing.T) {
	e, _ := shardedTestEngine(t)
	srv := e.NewNetServer(ServeConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	const clients = 8
	queries := testQueries(e, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			query := queries[i]
			want, err := e.PlaintextSearch(query, 10)
			if err != nil {
				errs <- err
				return
			}
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			cl, err := e.NewClient(detrand.New(fmt.Sprintf("net-client-%d", i)))
			if err != nil {
				errs <- err
				return
			}
			got, err := cl.SearchRemote(conn, query, 10)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("client %d: %d results, want %d", i, len(got), len(want))
				return
			}
			for j := range want {
				if got[j] != want[j] {
					errs <- fmt.Errorf("client %d rank %d: private %+v plaintext %+v", i, j, got[j], want[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Accepted != clients {
		t.Fatalf("accepted %d connections, want %d", st.Accepted, clients)
	}
	if st.Queries != clients {
		t.Fatalf("answered %d queries, want %d", st.Queries, clients)
	}
	if st.QueryTime <= 0 || st.MaxQueryTime <= 0 {
		t.Fatalf("query timing not recorded: %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve exited with %v", err)
	}
}

// TestSearchRemoteBatch sends several queries as one batch frame and
// checks each ranking against single-query SearchRemote and plaintext.
func TestSearchRemoteBatch(t *testing.T) {
	e, c := shardedTestEngine(t)
	client, server := net.Pipe()
	defer client.Close()
	go e.ServeConn(server)

	queries := testQueries(e, 3)
	batched, err := c.SearchRemoteBatch(client, queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(queries) {
		t.Fatalf("%d batch results, want %d", len(batched), len(queries))
	}
	for i, query := range queries {
		want, err := e.PlaintextSearch(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(batched[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(batched[i]), len(want))
		}
		for j := range want {
			if batched[i][j] != want[j] {
				t.Fatalf("query %d rank %d: batch %+v plaintext %+v", i, j, batched[i][j], want[j])
			}
		}
	}

	// The connection stays usable for single queries after a batch.
	if _, err := c.SearchRemote(client, queries[0], 5); err != nil {
		t.Fatalf("single query after batch: %v", err)
	}
}

// TestNetServerConnLimit verifies connections over the cap are answered
// with a protocol error and closed, while existing sessions keep
// working.
func TestNetServerConnLimit(t *testing.T) {
	e, c := shardedTestEngine(t)
	srv := e.NewNetServer(ServeConfig{MaxConns: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	first, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	query := testQueries(e, 1)[0]
	if _, err := c.SearchRemote(first, query, 5); err != nil {
		t.Fatalf("first connection rejected: %v", err)
	}

	// The server answers an over-limit connection with an error frame
	// before hanging up; read it without sending anything (a write could
	// race the server's close and reset the connection).
	second, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, body, err := wire.ReadMessage(second)
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if typ != wire.TypeError || !strings.Contains(string(body), "connection limit") {
		t.Fatalf("got type %d body %q, want connection-limit error", typ, body)
	}

	// The first session must still answer after the rejection.
	if _, err := c.SearchRemote(first, query, 5); err != nil {
		t.Fatalf("existing session broken by rejected connection: %v", err)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

// TestNetServerShutdownIdle: Shutdown on an idle server returns
// promptly, closes the listener, and Serve returns nil.
func TestNetServerShutdownIdle(t *testing.T) {
	e, _ := shardedTestEngine(t)
	srv := e.NewNetServer(ServeConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	// Give Serve a moment to register the listener.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not return after shutdown")
	}
	if _, err := net.Dial("tcp", l.Addr().String()); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

package embellish

import (
	"strings"
	"testing"
)

func TestGaugeClampsNegatives(t *testing.T) {
	// Regression: the live gauges (Active, Inflight, Queued) can read
	// transiently negative under disconnect-accounting races, and a raw
	// uint64 cast rendered them as ~1.8e19 on dashboards.
	cases := map[int64]uint64{-1: 0, -1 << 40: 0, 0: 0, 7: 7, 1 << 40: 1 << 40}
	for in, want := range cases {
		if got := gauge(in); got != want {
			t.Fatalf("gauge(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestStatsPayloadClampsGauges(t *testing.T) {
	e, _ := testEngine(t)
	srv := e.NewNetServer(ServeConfig{})
	// Force the gauges negative the way a lost decrement race would.
	srv.active.Add(-3)
	srv.inflight.Add(-2)
	p := srv.statsPayload()
	if p.Active != 0 || p.Inflight != 0 {
		t.Fatalf("negative gauges leaked into the wire payload: active=%d inflight=%d",
			p.Active, p.Inflight)
	}
	text := string(srv.MetricsText())
	for _, line := range []string{
		"embellish_connections_active 0\n",
		"embellish_inflight 0\n",
		"embellish_queue_depth 0\n",
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("metrics text missing %q:\n%s", line, text)
		}
	}
	if strings.Contains(text, "1844674407") {
		t.Fatalf("wrapped negative gauge in metrics text:\n%s", text)
	}
}

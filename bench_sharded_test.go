package embellish

// Head-to-head benchmarks for the sharded, precomputed serving pipeline
// against the seed execution plans, on a synthetic world of >= 1000
// documents. The three BenchmarkProcess1k* variants run the identical
// embellished query through:
//
//   - Sequential:         the paper's Algorithm 4 (seed Process)
//   - SeedParallel:       the seed term-striped ProcessParallel
//   - ShardedPrecomputed: the document-sharded worker pool with
//                         fixed-base exponentiation tables
//
// Rankings are identical across all three (verified in TestMain-adjacent
// unit tests); only the group operations and their schedule differ.

import (
	"sync"
	"testing"

	"embellish/internal/core"
	"embellish/internal/eval"
)

var (
	bigBenchOnce sync.Once
	bigBenchEnv  *eval.Env
	bigBenchErr  error
)

// bigBenchConfig is the >= 1000-document world used by the pipeline
// comparison benchmarks.
func bigBenchConfig() eval.Config {
	cfg := eval.DefaultConfig()
	cfg.Synsets = 2500
	cfg.NumDocs = 1200
	cfg.MeanDocLen = 80
	cfg.KeyBits = 256
	cfg.QuerySize = 12
	return cfg
}

func bigBenchEnvGet(b *testing.B) *eval.Env {
	b.Helper()
	bigBenchOnce.Do(func() {
		bigBenchEnv, bigBenchErr = eval.NewEnv(bigBenchConfig())
	})
	if bigBenchErr != nil {
		b.Fatalf("environment: %v", bigBenchErr)
	}
	return bigBenchEnv
}

// bigBenchQuery builds one embellished 12-term query and a server over
// the 1200-document world.
func bigBenchQuery(b *testing.B) (*core.Query, *core.Server) {
	b.Helper()
	e := bigBenchEnvGet(b)
	org, err := e.Organization(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	client := core.NewClient(org, e.PRKey, 1)
	client.CryptoRand = e.Rand
	genuine := benchGenuine(e, 12)
	q, _, err := client.Embellish(genuine)
	if err != nil {
		b.Fatal(err)
	}
	return q, core.NewServer(e.Index, org, e.DB)
}

func BenchmarkProcess1kSequential(b *testing.B) {
	q, server := bigBenchQuery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := server.Process(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcess1kSeedParallel(b *testing.B) {
	q, server := bigBenchQuery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := server.ProcessParallel(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcess1kShardedPrecomputed(b *testing.B) {
	q, server := bigBenchQuery(b)
	server.SetSharding(-1) // GOMAXPROCS shards
	server.SetPrecompute(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := server.ProcessParallel(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcess1kShardedOnly(b *testing.B) {
	q, server := bigBenchQuery(b)
	server.SetSharding(-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := server.ProcessParallel(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcess1kPrecomputedOnly(b *testing.B) {
	q, server := bigBenchQuery(b)
	server.SetPrecompute(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := server.Process(q); err != nil {
			b.Fatal(err)
		}
	}
}

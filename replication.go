package embellish

import (
	"fmt"
	"io"

	"embellish/internal/wal"
	"embellish/internal/wire"
)

// Replication turns the write-ahead log into a shipping lane: a read
// replica reports its last applied sequence number (TypeWALPull) and
// the primary answers with the raw crc-framed journal records the
// replica is missing (TypeWALChunk). The replica applies them through
// the ordinary public update path, journaling locally as it goes — its
// own WALSeq therefore tracks the primary's operation numbering
// exactly, which is what makes "caught up" a single integer
// comparison.

// maxWALChunkBytes caps one shipped chunk; a replica that is far
// behind catches up over several pulls instead of one giant frame.
const maxWALChunkBytes = 8 << 20

// ErrReplicationGap reports that the journal suffix a replica needs
// has been retired by a checkpoint on the primary. Incremental
// catch-up is impossible; re-bootstrap the replica from the primary's
// engine file or newest checkpoint.
var ErrReplicationGap = wal.ErrShipGap

// WALChunk is one shipped slice of a primary's journal.
type WALChunk struct {
	// PrimarySeq is the primary's newest journaled operation at pull
	// time — the replica's staleness target.
	PrimarySeq uint64
	// LastSeq is the last record shipped in Records, or the requested
	// afterSeq when Records is empty (caught up).
	LastSeq uint64
	// More reports a chunk truncated at the size cap (or cut short by
	// an append still in flight); pull again immediately.
	More bool
	// Records holds raw crc-framed journal records for
	// Engine.ApplyReplicated.
	Records []byte
}

// WALRecordsAfter collects the journal suffix with sequence numbers
// greater than after, up to maxBytes (<= 0 for unlimited; at least one
// record is always shipped when one exists). The error wraps
// ErrReplicationGap when a checkpoint has retired the suffix.
func (e *Engine) WALRecordsAfter(after uint64, maxBytes int) (WALChunk, error) {
	e.updateMu.Lock()
	ws := e.wal
	if ws == nil {
		e.updateMu.Unlock()
		return WALChunk{}, errNotDurable
	}
	dir := ws.cfg.Dir
	primary := ws.seq
	e.updateMu.Unlock()
	if after > primary {
		return WALChunk{}, fmt.Errorf("embellish: replica at seq %d is ahead of primary at seq %d", after, primary)
	}
	if after == primary {
		return WALChunk{PrimarySeq: primary, LastSeq: after}, nil
	}
	records, last, more, err := wal.CollectAfter(dir, after, maxBytes)
	if err != nil {
		return WALChunk{}, err
	}
	if last == after {
		// The primary is ahead but nothing after `after` remains on
		// disk: the suffix was folded into a checkpoint and retired.
		return WALChunk{}, fmt.Errorf("%w: primary at seq %d has no journal records after %d",
			ErrReplicationGap, primary, after)
	}
	if last > primary {
		// Records landed between the seq read and the collection; the
		// snapshot is still consistent, just newer.
		primary = last
	}
	return WALChunk{
		PrimarySeq: primary,
		LastSeq:    last,
		// A collection cut short by an in-flight append (torn tail)
		// reports More too, so the replica re-pulls instead of idling a
		// full poll interval behind.
		More:    more || last < primary,
		Records: records,
	}, nil
}

// ApplyReplicated applies one shipped chunk through the engine's
// public update path: every operation record continues the local
// sequence (records at or below it are skipped as duplicates, a gap is
// an error), and on a durable engine each apply journals locally — the
// replica's own WALSeq ends the chunk equal to the last applied
// record's sequence number. It returns the number of operations
// applied.
func (e *Engine) ApplyReplicated(records []byte) (int, error) {
	seq := uint64(0)
	if ws, ok := e.WALStatus(); ok {
		seq = ws.Seq
	}
	applied := 0
	err := wal.DecodeShipped(records, func(rec *wal.Record) error {
		if rec.Op == wal.OpCheckpoint || rec.Seq <= seq {
			return nil
		}
		if rec.Seq != seq+1 {
			return fmt.Errorf("embellish: replicated record seq %d does not continue local seq %d", rec.Seq, seq)
		}
		switch rec.Op {
		case wal.OpAddDocs:
			docs := make([]Document, len(rec.Docs))
			for i, d := range rec.Docs {
				docs[i] = Document{ID: int(d.ID), Text: string(d.Text)}
			}
			if err := e.AddDocuments(docs); err != nil {
				return err
			}
		case wal.OpDeleteDocs:
			ids := make([]int, len(rec.IDs))
			for i, id := range rec.IDs {
				ids[i] = int(id)
			}
			if err := e.DeleteDocuments(ids); err != nil {
				return err
			}
		default:
			return fmt.Errorf("embellish: replicated record with unknown op %d", rec.Op)
		}
		seq++
		applied++
		return nil
	})
	return applied, err
}

// answerWALPull serves one replica catch-up request. Like TypeStats it
// bypasses admission: shipping journal bytes is cheap sequential I/O,
// and starving it under load is exactly when replicas (the failover
// targets) must not fall behind.
func (s *NetServer) answerWALPull(rw io.ReadWriter, body []byte) error {
	if !s.allowReplication {
		s.errs.Add(1)
		return wire.WriteError(rw, "replication is disabled on this server")
	}
	after, err := wire.DecodeWALPull(body)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	c, err := s.engine.WALRecordsAfter(after, maxWALChunkBytes)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	return wire.WriteWALChunk(rw, wire.WALChunk{
		PrimarySeq: c.PrimarySeq,
		LastSeq:    c.LastSeq,
		More:       c.More,
		Records:    c.Records,
	})
}

// SetReplicaStatus wires a replication-lag probe into the server's
// stats surface: fn reports the primary's newest known sequence number
// (ok false while no pull has succeeded yet). Call it on a replica's
// NetServer so TypeStats and /metrics expose staleness.
func (s *NetServer) SetReplicaStatus(fn func() (primarySeq uint64, ok bool)) {
	s.mu.Lock()
	s.replicaStatus = fn
	s.mu.Unlock()
}

// PullWAL fetches one catch-up chunk from a primary over an open
// protocol connection: every journal record after afterSeq, capped at
// the primary's chunk size.
func PullWAL(conn io.ReadWriter, afterSeq uint64) (WALChunk, error) {
	if err := wire.WriteWALPull(conn, afterSeq); err != nil {
		return WALChunk{}, fmt.Errorf("embellish: sending WAL pull: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return WALChunk{}, fmt.Errorf("embellish: reading WAL chunk: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return WALChunk{}, remoteError(body)
	case wire.TypeWALChunk:
	default:
		return WALChunk{}, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	c, err := wire.DecodeWALChunk(body)
	if err != nil {
		return WALChunk{}, err
	}
	return WALChunk{PrimarySeq: c.PrimarySeq, LastSeq: c.LastSeq, More: c.More, Records: c.Records}, nil
}

package embellish

import (
	"math/bits"
	"strings"
	"testing"
	"time"

	"embellish/internal/corpus"
	"embellish/internal/detrand"
	"embellish/internal/wngen"
)

// liveTestEngine builds a fresh (uncached) engine the live tests can
// mutate freely.
func liveTestEngine(t testing.TB, maxSegments int) (*Engine, *Client) {
	t.Helper()
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.MaxSegments = maxSegments
	e, err := NewEngine(MiniLexicon(), demoDocs(t), opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	c, err := e.NewClient(detrand.New("live-test"))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return e, c
}

// moreDocs generates documents continuing the engine's id sequence,
// drawn from the searchable vocabulary so they actually score.
func moreDocs(e *Engine, n int, salt int) []Document {
	lemmas := e.SearchableLemmas()
	base := e.NextDocID()
	docs := make([]Document, n)
	for i := range docs {
		var b strings.Builder
		for j := 0; j < 25; j++ {
			b.WriteString(lemmas[(salt+7*i+3*j)%len(lemmas)])
			b.WriteByte(' ')
		}
		docs[i] = Document{ID: base + i, Text: b.String()}
	}
	return docs
}

// assertClaim1 checks that the private ranking equals the plaintext
// ranking — documents AND scores — on the engine's current corpus.
func assertClaim1(t *testing.T, e *Engine, c *Client, query string) {
	t.Helper()
	private, err := c.Search(query, 0)
	if err != nil {
		t.Fatalf("Search(%q): %v", query, err)
	}
	plain, err := e.PlaintextSearch(query, 0)
	if err != nil {
		t.Fatalf("PlaintextSearch(%q): %v", query, err)
	}
	if len(private) < len(plain) {
		t.Fatalf("query %q: %d private results for %d plaintext hits", query, len(private), len(plain))
	}
	for i := range plain {
		if private[i] != plain[i] {
			t.Fatalf("query %q rank %d: private %+v, plaintext %+v", query, i, private[i], plain[i])
		}
	}
	// Whatever the candidate set holds beyond the plaintext hits is
	// decoy-only and must carry score zero.
	for _, r := range private[len(plain):] {
		if r.Score != 0 {
			t.Fatalf("query %q: extra candidate %+v has non-zero score", query, r)
		}
	}
}

func liveQueries(e *Engine) []string {
	lemmas := e.SearchableLemmas()
	return []string{
		lemmas[1],
		lemmas[3] + " " + lemmas[11],
		lemmas[5] + " " + lemmas[17] + " " + lemmas[29],
	}
}

func TestAddDocumentsSearchableLive(t *testing.T) {
	e, c := liveTestEngine(t, 0)
	before := e.NumDocs()
	if err := e.AddDocuments(moreDocs(e, 15, 1)); err != nil {
		t.Fatalf("AddDocuments: %v", err)
	}
	if e.NumDocs() != before+15 {
		t.Fatalf("NumDocs = %d, want %d", e.NumDocs(), before+15)
	}
	if e.NumSegments() != 2 {
		t.Fatalf("NumSegments = %d, want 2 (no rebuild)", e.NumSegments())
	}
	for _, q := range liveQueries(e) {
		assertClaim1(t, e, c, q)
	}
	// Added documents are actually retrievable: at least one query must
	// rank a new doc.
	found := false
	for _, q := range liveQueries(e) {
		res, err := e.PlaintextSearch(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.DocID >= before {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no query ranked any added document")
	}
}

func TestDeleteDocumentsLive(t *testing.T) {
	e, c := liveTestEngine(t, 0)
	q := liveQueries(e)[1]
	res, err := e.PlaintextSearch(q, 1)
	if err != nil || len(res) == 0 {
		t.Fatalf("no plaintext hits to delete: %v", err)
	}
	victim := res[0].DocID
	if err := e.DeleteDocuments([]int{victim}); err != nil {
		t.Fatalf("DeleteDocuments: %v", err)
	}
	after, err := c.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.DocID == victim {
			t.Fatalf("deleted doc %d still a candidate", victim)
		}
	}
	for _, qq := range liveQueries(e) {
		assertClaim1(t, e, c, qq)
	}
	// The write path surfaces the tombstone skips in the stats.
	eq, err := c.Embellish(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Process(eq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.TombstonesSkipped == 0 {
		t.Fatal("ProcessStats.TombstonesSkipped = 0 after deleting a scoring doc")
	}
}

func TestInterleavedUpdatesPreserveClaim1(t *testing.T) {
	e, c := liveTestEngine(t, -1) // no automatic merging: exercise many segments
	deleted := 0
	for round := 0; round < 4; round++ {
		if err := e.AddDocuments(moreDocs(e, 6, round)); err != nil {
			t.Fatalf("round %d add: %v", round, err)
		}
		// Delete one old and one fresh document.
		ids := []int{round*2 + 1, e.NextDocID() - 1}
		if err := e.DeleteDocuments(ids); err != nil {
			t.Fatalf("round %d delete %v: %v", round, ids, err)
		}
		deleted += 2
		for _, q := range liveQueries(e) {
			assertClaim1(t, e, c, q)
		}
	}
	if e.NumSegments() != 5 {
		t.Fatalf("NumSegments = %d, want 5 with merging disabled", e.NumSegments())
	}
	// A full compaction changes neither rankings nor scores.
	wantByQuery := map[string][]Result{}
	for _, q := range liveQueries(e) {
		res, err := e.PlaintextSearch(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantByQuery[q] = res
	}
	e.Compact()
	if e.NumSegments() != 1 {
		t.Fatalf("NumSegments = %d after Compact, want 1", e.NumSegments())
	}
	for q, want := range wantByQuery {
		got, err := e.PlaintextSearch(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: %d results after compact, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %q rank %d changed across compact: %+v vs %+v", q, i, got[i], want[i])
			}
		}
		assertClaim1(t, e, c, q)
	}
	// After compaction the tombstoned postings are gone entirely.
	eq, err := c.Embellish(liveQueries(e)[2])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Process(eq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.TombstonesSkipped != 0 {
		t.Fatalf("TombstonesSkipped = %d after Compact, want 0", resp.Stats.TombstonesSkipped)
	}
}

func TestUpdateValidation(t *testing.T) {
	e, _ := liveTestEngine(t, 0)
	next := e.NextDocID()
	if err := e.AddDocuments(nil); err == nil {
		t.Fatal("empty add accepted")
	}
	if err := e.AddDocuments([]Document{{ID: next + 1, Text: "gap"}}); err == nil {
		t.Fatal("id gap accepted")
	}
	if err := e.AddDocuments([]Document{{ID: next - 1, Text: "reuse"}}); err == nil {
		t.Fatal("id reuse accepted")
	}
	if err := e.DeleteDocuments(nil); err == nil {
		t.Fatal("empty delete accepted")
	}
	if err := e.DeleteDocuments([]int{-1}); err == nil {
		t.Fatal("negative id accepted")
	}
	if bits.UintSize == 64 {
		// An id past int32 would wrap to some other (live) document if
		// it reached the DocID conversion.
		big := int64(1) << 33
		if err := e.DeleteDocuments([]int{int(big) + 2}); err == nil {
			t.Fatal("id past int32 accepted")
		}
	}
	if err := e.DeleteDocuments([]int{next}); err == nil {
		t.Fatal("unassigned id accepted")
	}
	if err := e.DeleteDocuments([]int{2}); err != nil {
		t.Fatalf("valid delete rejected: %v", err)
	}
	if err := e.DeleteDocuments([]int{2}); err == nil {
		t.Fatal("double delete accepted")
	}
	// Failed updates leave the engine unchanged and working.
	if e.NextDocID() != next {
		t.Fatalf("NextDocID moved to %d on failed adds", e.NextDocID())
	}
	if _, err := e.PlaintextSearch(liveQueries(e)[0], 5); err != nil {
		t.Fatalf("engine broken after rejected updates: %v", err)
	}
}

func TestMergePolicyBoundsEngineSegments(t *testing.T) {
	e, c := liveTestEngine(t, 2)
	for round := 0; round < 5; round++ {
		if err := e.AddDocuments(moreDocs(e, 3, 10+round)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.NumSegments() > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("merge policy left %d segments", e.NumSegments())
		}
		time.Sleep(time.Millisecond)
	}
	for _, q := range liveQueries(e) {
		assertClaim1(t, e, c, q)
	}
}

// TestIncrementalAddBeatsRebuild is the acceptance benchmark: adding
// 10% new documents to a 1,200-document world must not rebuild the full
// index, and must run at least 5x faster than a rebuild (in practice it
// is orders of magnitude faster: the segment build touches only the new
// documents and none of the bucket machinery).
func TestIncrementalAddBeatsRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 1,200-doc world in -short mode")
	}
	world := syntheticWorldDocs(t, 2500, 1320, 1)
	base, extra := world[:1200], world[1200:]
	opts := DefaultOptions()
	opts.KeyBits = 256
	lex := SyntheticLexicon(2500, 1)
	e, err := NewEngine(lex, base, opts)
	if err != nil {
		t.Fatalf("NewEngine(base): %v", err)
	}

	t0 := time.Now()
	if err := e.AddDocuments(extra); err != nil {
		t.Fatalf("AddDocuments: %v", err)
	}
	addTime := time.Since(t0)
	if e.NumSegments() != 2 {
		t.Fatalf("add rebuilt the index: %d segments", e.NumSegments())
	}

	// A rebuild reuses its lexicon, so generation stays untimed.
	lex2 := SyntheticLexicon(2500, 1)
	t0 = time.Now()
	if _, err := NewEngine(lex2, world, opts); err != nil {
		t.Fatalf("NewEngine(full): %v", err)
	}
	rebuildTime := time.Since(t0)

	ratio := float64(rebuildTime) / float64(addTime)
	t.Logf("add %d docs: %v; full rebuild: %v; speedup %.1fx", len(extra), addTime, rebuildTime, ratio)
	if ratio < 5 {
		t.Fatalf("incremental add only %.1fx faster than rebuild (want >= 5x)", ratio)
	}
}

// syntheticWorldDocs generates a deterministic corpus over the
// synthetic lexicon, shared by the incremental-add test and benchmarks.
func syntheticWorldDocs(t testing.TB, synsets, numDocs int, seed int64) []Document {
	t.Helper()
	db := wngen.Generate(wngen.ScaledConfig(synsets, seed))
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = numDocs
	ccfg.Seed = seed + 1
	corp := corpus.Generate(db, ccfg)
	docs := make([]Document, len(corp.Docs))
	for i, d := range corp.Docs {
		docs[i] = Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}
	return docs
}

package embellish

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinksResolve is the documentation-suite link check: every
// relative markdown link in README.md and docs/ must point to a file
// that exists in the repository, and every anchor into a markdown
// file must match one of its headings. External http(s) links are not
// fetched (tests run offline) — only their syntax is accepted.
func TestDocsLinksResolve(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md", "CHANGES.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 9 { // README, ROADMAP, CHANGES + the 6 docs/ pages
		t.Fatalf("only %d markdown files found; docs suite incomplete: %v", len(files), files)
	}

	// [text](target) — good enough for the plain links these docs use;
	// images and reference-style links would need more.
	linkRe := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), path)
			if path == "" {
				resolved = file // same-file anchor
			}
			info, err := os.Stat(resolved)
			if err != nil {
				t.Errorf("%s links to %q: %v", file, target, err)
				continue
			}
			if anchor != "" && !info.IsDir() {
				if !hasAnchor(t, resolved, anchor) {
					t.Errorf("%s links to %q: no heading matches #%s", file, target, anchor)
				}
			}
		}
	}
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub-style slug equals anchor.
func hasAnchor(t *testing.T, file, anchor string) bool {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		if headingSlug(strings.TrimLeft(line, "# ")) == anchor {
			return true
		}
	}
	return false
}

// headingSlug approximates GitHub's anchor slugging: lowercase, drop
// everything but letters/digits/spaces/hyphens/underscores, spaces to
// hyphens.
func headingSlug(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// TestDocsMentionCurrentSurface guards against the docs drifting
// behind the code: the flag tables and knob references in the docs
// must name the knobs the binaries actually expose, and the wire
// reference must cover every message type constant.
func TestDocsMentionCurrentSurface(t *testing.T) {
	perf, err := os.ReadFile("docs/PERFORMANCE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, knob := range []string{
		"Shards", "PrecomputeWindow", "Parallelism", "PIRWorkers",
		"PIRBatchAmortize", "ConfigurePIRBatchAmortize",
		"PIRRecursive", "ConfigurePIRRecursive", "SetFetchRecursive",
		"BlockSize", "RetrievalKeyBits", "SetFetchPipeline", "MaxSegments",
		"Durability", "CheckpointEveryOps", "BENCH_PR7.json",
		"BENCH_PR10.json", "amort_ms_per_doc", "amort_pipe_ms_per_doc",
		"rec_ms_per_doc", "rec_query_bytes", "Montgomery",
		"OPERATIONS.md",
	} {
		if !strings.Contains(string(perf), knob) {
			t.Errorf("docs/PERFORMANCE.md does not mention %s", knob)
		}
	}
	ops, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		// The serving knobs and their CLI spellings...
		"MaxInflight", "QueueDepth", "QueueTimeout", "RequestTimeout",
		"IdleTimeout", "-max-inflight", "-queue-depth", "-queue-timeout",
		"-request-timeout", "-metrics",
		// ...the typed error surface and cancellation API...
		"ErrOverloaded", "ErrRemoteDeadline", "OverloadRefusal",
		"DeadlineRefusal", "CancelledError", "ProcessContext",
		"FetchDocumentsContext",
		// ...the metrics surface...
		"TypeStats", "ServerStats", "/metrics", "/stats.json",
		"ShedQueueFull", "ShedQueueTimeout", "WALSeq",
		"PIRModMuls", "PIRTableMuls",
		// ...the recursive PIR serving surface...
		"PIRRecursive", "-pir-recursive",
		"PIRRecursiveQueries", "PIRRecursivePartials",
		"pir_recursive_queries_total", "pir_recursive_partials_total",
		"SetFetchRecursive",
		// ...the replication and cluster knobs...
		"-allow-replication", "-replicate-from", "-replicate-every",
		"-partition", "repl_lag_ops", "ReplPrimarySeq",
		"RouterFailovers", "embellish_router_",
		"-only cluster", "BENCH_PR8.json",
		// ...the privacy serving surfaces...
		"-allow-lexicon-sync", "-risk-audit", "-sync-lexicon",
		"-decoys", "-audit", "DecoyQueries", "RiskAudited",
		"decoy_queries_total", "risk_sum", "BENCH_PR9.json",
		// ...and the load harness.
		"BENCH_PR7.json", "-load-rates", "-load-strict",
		"work_fraction", "p99_ms",
	} {
		if !strings.Contains(string(ops), name) {
			t.Errorf("docs/OPERATIONS.md does not document %s", name)
		}
	}
	durability, err := os.ReadFile("docs/DURABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		// The API surface and policy names the durability layer exposes...
		"OpenDurable", "EnableDurability", "Checkpoint", "WALStatus",
		"FsyncEveryRecord", "FsyncInterval", "FsyncNever",
		"CheckpointEveryOps", "CheckpointEveryBytes",
		"-data-dir", "-fsync", "-checkpoint-every",
		// ...and the on-disk grammar recovery depends on.
		"EWAL", "crc32", "checkpoint-", "wal-",
	} {
		if !strings.Contains(string(durability), name) {
			t.Errorf("docs/DURABILITY.md does not document %s", name)
		}
	}
	wire, err := os.ReadFile("docs/WIRE.md")
	if err != nil {
		t.Fatal(err)
	}
	for typ := 1; typ <= 22; typ++ {
		if !strings.Contains(string(wire), fmt.Sprintf("| %d |", typ)) {
			t.Errorf("docs/WIRE.md type table misses message type %d", typ)
		}
	}
	for _, name := range []string{
		"TypeQuery", "TypeResponse", "TypeError", "TypeBatchQuery",
		"TypeBatchResponse", "TypeAddDocs", "TypeDeleteDocs", "TypeAdminOK",
		"TypePIRParams", "TypePIRQuery", "TypePIRResponse",
		"TypePIRBatchQuery", "TypePIRBatchResponse", "TypeStats",
		"TypeWALPull", "TypeWALChunk", "TypeClusterMap",
		"TypeLexiconSync", "TypeLexicon", "TypeDecoyQuery", "TypeRiskAudit",
		"TypePIRRecursiveQuery", "MaxPIRRecursiveBatch", "PIRRecursive",
		"SetFetchRecursive", "RecursiveLevel2", "re-partitioned",
		"AllowUpdates", "AllowRetrieval", "AllowReplication",
		"AllowLexiconSync", "RiskAudit", "StaleLexiconRefusal",
		"ErrStaleLexicon", "DecoyQueries",
		"PIRBatchAmortize",
	} {
		if !strings.Contains(string(wire), name) {
			t.Errorf("docs/WIRE.md does not document %s", name)
		}
	}
	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		// The cluster tier: binaries, id math anchors, replication path.
		"embellish-router", "Config.Base", "TypeWALPull",
		"AllowReplication", "failover",
	} {
		if !strings.Contains(string(arch), name) {
			t.Errorf("docs/ARCHITECTURE.md does not document %s", name)
		}
	}
	threat, err := os.ReadFile("docs/THREAT_MODEL.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, topic := range []string{"timing", "length", "bucketsize", "honest"} {
		if !strings.Contains(strings.ToLower(string(threat)), topic) {
			t.Errorf("docs/THREAT_MODEL.md does not discuss %s", topic)
		}
	}
	for _, name := range []string{
		// The served-embellishment adversary model of PR 9.
		"AllowLexiconSync", "RiskAudit", "TypeDecoyQuery",
		"NewDecoyStream", "GhostRate", "StaleLexiconRefusal",
		"RiskPoint", "coheren",
	} {
		if !strings.Contains(string(threat), name) {
			t.Errorf("docs/THREAT_MODEL.md does not document %s", name)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "THREAT_MODEL.md") {
		t.Error("README.md does not link the threat model")
	}
}

package embellish

import (
	"fmt"
	"io"

	"embellish/internal/core"
	"embellish/internal/privacy"
	"embellish/internal/wire"
	"embellish/internal/wordnet"
)

// Per-session privacy-risk auditing: the serving engine plays the
// paper's adversary against its own clients. For every query frame it
// observes on a connection — genuine or decoy-marked — it decomposes
// the term stream into host buckets, scores the posterior-similarity
// risk of Section 6 with the factorized estimator
// (privacy.Auditor.ObservedRisk), and runs the TrackMeNot coherence
// adversary over decoy rounds. The resulting per-session report
// (TypeRiskAudit) tells an operator — and the test battery — how much
// privacy the observed traffic actually bought, measured by the same
// model the offline evaluator uses.

// auditCoherenceCap bounds the term prefix the per-frame coherence
// statistic considers: coherence is quadratic in terms, and embellished
// frames carry BucketSize times the genuine term count.
const auditCoherenceCap = 12

// maxPendingDecoys bounds the decoy coherences buffered per round so a
// client streaming only decoys cannot grow server memory; decoys past
// the cap still count, they just do not enter the adversary's round.
const maxPendingDecoys = 64

// sessionAudit accumulates one connection's observed-risk report. It
// lives on the connection's serving goroutine, so no locking: the wire
// protocol is strictly request-response per connection.
type sessionAudit struct {
	srv *NetServer
	// aud is built lazily on the first observed frame: each session
	// needs its own semdist.Calculator (not safe for concurrent use),
	// and sessions that never see a query frame should not pay for one.
	aud           *privacy.Auditor
	report        wire.RiskAudit
	pendingDecoys []float64 // coherences of decoys since the last genuine frame
}

func (s *NetServer) newSessionAudit() *sessionAudit {
	return &sessionAudit{srv: s}
}

// observe folds one decoded query frame into the session report. Only
// frames that decode are observed — the adversary scores term streams,
// and a malformed frame has none.
func (a *sessionAudit) observe(q *core.Query, decoy bool) {
	if a == nil {
		return
	}
	if a.aud == nil {
		a.aud = privacy.NewAuditor(a.srv.engine.org, a.srv.engine.lex.db)
	}
	terms := make([]wordnet.TermID, len(q.Entries))
	for i, e := range q.Entries {
		terms[i] = e.Term
	}
	coh := a.aud.Coherence(terms, auditCoherenceCap)
	if decoy {
		a.report.Decoys++
		a.report.CoherenceDecoySumMicros += micros(coh)
		if len(a.pendingDecoys) < maxPendingDecoys {
			a.pendingDecoys = append(a.pendingDecoys, coh)
		}
	} else {
		a.report.Queries++
		a.report.CoherenceGenuineSumMicros += micros(coh)
		if len(a.pendingDecoys) > 0 {
			// One adversary round: the genuine frame against the decoys
			// since the last one. The adversary guesses the most coherent
			// (lowest mean distance) stream as genuine; ties break toward
			// the earlier-arrived decoy, matching trackmenot.Adversary.
			a.report.Rounds++
			hit := true
			for _, d := range a.pendingDecoys {
				if d <= coh {
					hit = false
					break
				}
			}
			if hit {
				a.report.RoundHits++
			}
			a.pendingDecoys = a.pendingDecoys[:0]
		}
	}
	buckets, err := privacy.Decompose(a.srv.engine.org, terms)
	if err == nil {
		var risk float64
		if risk, err = a.aud.ObservedRisk(buckets); err == nil {
			a.report.Audited++
			a.srv.riskAudited.Add(1)
			m := micros(risk)
			a.report.RiskSumMicros += m
			a.srv.riskSumMicros.Add(int64(m))
			if m > a.report.MaxRiskMicros {
				a.report.MaxRiskMicros = m
			}
			return
		}
	}
	// Not an embellished frame, or the candidate space exceeded the
	// work cap: counted, never silently dropped.
	a.report.Skipped++
	a.srv.riskSkipped.Add(1)
}

// micros converts a risk or coherence value to the wire's integer
// micro-units.
func micros(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	return uint64(v*1e6 + 0.5)
}

// answerRiskAudit serves one TypeRiskAudit request from the
// connection's accumulated session report — behind the opt-in
// ServeConfig.RiskAudit flag, and like the other gates the refusal
// leaves the connection reusable.
func (s *NetServer) answerRiskAudit(rw io.ReadWriter, body []byte, sess *sessionAudit) error {
	if !s.riskAudit {
		s.errs.Add(1)
		return wire.WriteError(rw, "risk auditing is disabled on this server")
	}
	if len(body) != 0 {
		s.errs.Add(1)
		return wire.WriteError(rw, "risk audit request carries no body")
	}
	var report wire.RiskAudit
	if sess != nil {
		report = sess.report
	}
	return wire.WriteRiskAudit(rw, report)
}

// answerLexiconSync serves one TypeLexiconSync request — behind the
// opt-in ServeConfig.AllowLexiconSync flag. Version 0 requests the
// full tables; the server's own version answers with the no-payload
// "current" form; any other version is refused with the typed
// StaleLexiconRefusal error (the client's organization no longer
// matches and its queries would be malformed).
func (s *NetServer) answerLexiconSync(rw io.ReadWriter, body []byte) error {
	if !s.allowLexiconSync {
		s.errs.Add(1)
		return wire.WriteError(rw, "lexicon sync is disabled on this server")
	}
	version, err := wire.DecodeLexiconSync(body)
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	l, err := s.engine.lexiconPayload()
	if err != nil {
		s.errs.Add(1)
		return wire.WriteError(rw, err.Error())
	}
	switch version {
	case 0:
		return wire.WriteLexicon(rw, l)
	case l.Version:
		return wire.WriteLexicon(rw, wire.Lexicon{Version: l.Version, Current: true})
	default:
		s.errs.Add(1)
		return wire.WriteError(rw, fmt.Sprintf(
			"%s: server lexicon version is %d, client synced %d; re-sync", wire.StaleLexiconRefusal, l.Version, version))
	}
}

// RiskAuditReport is a decoded per-session privacy audit, the client
// view of the server's TypeRiskAudit answer. Counters are cumulative
// over the connection's lifetime.
type RiskAuditReport struct {
	// Queries and Decoys count the observed genuine- and decoy-marked
	// query frames (batch members included).
	Queries, Decoys int
	// Audited counts frames the risk model scored; Skipped the ones it
	// could not (non-embellished term streams, or candidate spaces over
	// the server's work cap).
	Audited, Skipped int
	// MeanRisk is the mean per-query observed risk across audited
	// frames — the similarity the paper's Section 6 adversary expects
	// between two posterior guesses; MaxRisk the worst single frame.
	// Zero when nothing was audited.
	MeanRisk, MaxRisk float64
	// Rounds and RoundHits report the live TrackMeNot experiment: how
	// many decoy rounds the session produced, and how often the
	// coherence adversary picked the genuine frame out of the round.
	Rounds, RoundHits int
	// MeanGenuineCoherence and MeanDecoyCoherence are the mean
	// per-frame term coherences (mean pairwise semantic distance, lower
	// = more topically coherent) of the two frame classes.
	MeanGenuineCoherence, MeanDecoyCoherence float64
}

// AdversarySuccess is the coherence adversary's live success rate over
// the session's decoy rounds; 0 when no round completed. A value far
// above 1/(decoys-per-round+1) means the decoy cover is statistically
// broken — the paper's argument for bucket embellishment over ghost
// traffic.
func (r RiskAuditReport) AdversarySuccess() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.RoundHits) / float64(r.Rounds)
}

// SessionRiskAudit fetches THIS connection's accumulated privacy audit
// from a server running with ServeConfig.RiskAudit. The report covers
// every query frame the server observed on the connection so far, so a
// client can measure — with the server's own adversary model — how
// much privacy its embellishment and decoy streams actually bought.
func SessionRiskAudit(conn io.ReadWriter) (RiskAuditReport, error) {
	if err := wire.WriteRiskAuditRequest(conn); err != nil {
		return RiskAuditReport{}, fmt.Errorf("embellish: sending audit request: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return RiskAuditReport{}, fmt.Errorf("embellish: reading audit: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return RiskAuditReport{}, remoteError(body)
	case wire.TypeRiskAudit:
	default:
		return RiskAuditReport{}, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	a, err := wire.DecodeRiskAudit(body)
	if err != nil {
		return RiskAuditReport{}, err
	}
	r := RiskAuditReport{
		Queries:   int(a.Queries),
		Decoys:    int(a.Decoys),
		Audited:   int(a.Audited),
		Skipped:   int(a.Skipped),
		MaxRisk:   float64(a.MaxRiskMicros) / 1e6,
		Rounds:    int(a.Rounds),
		RoundHits: int(a.RoundHits),
	}
	if a.Audited > 0 {
		r.MeanRisk = float64(a.RiskSumMicros) / 1e6 / float64(a.Audited)
	}
	if a.Queries > 0 {
		r.MeanGenuineCoherence = float64(a.CoherenceGenuineSumMicros) / 1e6 / float64(a.Queries)
	}
	if a.Decoys > 0 {
		r.MeanDecoyCoherence = float64(a.CoherenceDecoySumMicros) / 1e6 / float64(a.Decoys)
	}
	return r, nil
}

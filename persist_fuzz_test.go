package embellish

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadEngine: an engine file is untrusted input (deployments ship
// them between machines), so the loader must survive arbitrary bytes —
// clean errors, no panics, no unbounded allocations — and any input it
// ACCEPTS must yield an internally consistent engine. Seeded with the
// checked-in v1/v2/v3 golden files, so the fuzzer starts from the full
// accepted grammar including the doc-store section.
func FuzzLoadEngine(f *testing.F) {
	for _, version := range []int{1, 2, 3} {
		data, err := os.ReadFile(filepath.Join("testdata", "engine_v"+string(rune('0'+version))+".bin"))
		if err != nil {
			f.Fatalf("golden seed: %v", err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte("EENG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := LoadEngine(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted engines must be coherent enough to serve.
		if e.NumDocs() < 0 || e.NextDocID() < e.NumDocs() {
			t.Fatalf("incoherent doc counts: %d live, next %d", e.NumDocs(), e.NextDocID())
		}
		if e.NumSegments() < 1 {
			t.Fatalf("engine with %d segments accepted", e.NumSegments())
		}
		if e.NumBuckets() < 1 || e.NumSearchableTerms() < 1 {
			t.Fatalf("empty organization accepted: %d buckets, %d terms", e.NumBuckets(), e.NumSearchableTerms())
		}
		if e.StoresDocuments() {
			// The store's id space must track the index's: every live id
			// reads without panicking (errors are fine — a deleted doc).
			for _, id := range []int{0, e.NextDocID() - 1} {
				_, _ = e.Document(id)
			}
		}
	})
}

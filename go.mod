module embellish

go 1.24.0

package embellish

import (
	"strings"
	"testing"
	"time"
)

// TestOptionsValidateExecutionKnobs pins the documented semantics of
// every execution/serving knob: -1 and 0 are the only special values;
// anything below -1 or past the sanity cap is rejected with an error
// naming the field.
func TestOptionsValidateExecutionKnobs(t *testing.T) {
	base := DefaultOptions()
	base.KeyBits = 256
	cases := []struct {
		name    string
		mutate  func(*Options)
		wantErr string // empty = must validate
	}{
		{"defaults", func(o *Options) {}, ""},
		{"shards gomaxprocs", func(o *Options) { o.Shards = -1 }, ""},
		{"shards pinned", func(o *Options) { o.Shards = 16 }, ""},
		{"shards below -1", func(o *Options) { o.Shards = -2 }, "Shards"},
		{"shards huge", func(o *Options) { o.Shards = 1<<12 + 1 }, "Shards"},
		{"window default", func(o *Options) { o.PrecomputeWindow = -1 }, ""},
		{"window below -1", func(o *Options) { o.PrecomputeWindow = -2 }, "PrecomputeWindow"},
		{"window too wide", func(o *Options) { o.PrecomputeWindow = 9 }, "PrecomputeWindow"},
		{"parallelism single", func(o *Options) { o.Parallelism = 0 }, ""},
		{"parallelism gomaxprocs", func(o *Options) { o.Parallelism = -1 }, ""},
		{"parallelism below -1", func(o *Options) { o.Parallelism = -5 }, "Parallelism"},
		{"parallelism huge", func(o *Options) { o.Parallelism = 1<<12 + 1 }, "Parallelism"},
		{"maxconns unlimited", func(o *Options) { o.MaxConns = -1 }, ""},
		{"maxconns below -1", func(o *Options) { o.MaxConns = -7 }, "MaxConns"},
		{"maxsegments disable", func(o *Options) { o.MaxSegments = -1 }, ""},
		{"maxsegments pinned", func(o *Options) { o.MaxSegments = 3 }, ""},
		{"maxsegments below -1", func(o *Options) { o.MaxSegments = -2 }, "MaxSegments"},
		{"maxsegments huge", func(o *Options) { o.MaxSegments = 1<<12 + 1 }, "MaxSegments"},
	}
	for _, tc := range cases {
		o := base
		tc.mutate(&o)
		err := o.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.wantErr)
		}
	}
}

// TestConfigureExecutionRejectsBadKnobs checks the runtime path applies
// the same validation, leaves a rejected engine fully working, and
// actually applies accepted values.
func TestConfigureExecutionRejectsBadKnobs(t *testing.T) {
	e, c := liveTestEngine(t, 0)
	for _, bad := range [][3]int{
		{-2, 0, 0}, // shards
		{0, 9, 0},  // window
		{0, -2, 0}, // window below -1
		{0, 0, -2}, // parallelism
		{1 << 13, 0, 0},
	} {
		if err := e.ConfigureExecution(bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("ConfigureExecution(%v) accepted", bad)
		}
	}
	query := liveQueries(e)[0]
	assertClaim1(t, e, c, query)

	if err := e.ConfigureExecution(2, 4, 2); err != nil {
		t.Fatalf("valid ConfigureExecution rejected: %v", err)
	}
	assertClaim1(t, e, c, query)
	if err := e.AddDocuments(moreDocs(e, 4, 99)); err != nil {
		t.Fatal(err)
	}
	// The sharded pipeline keeps matching plaintext after an update on
	// the reconfigured engine.
	assertClaim1(t, e, c, query)
}

// TestConfigureMergePolicy checks the runtime merge-policy knob: it is
// validated, applies to loaded engines (MaxSegments is not persisted),
// and -1 really disables background merging.
func TestConfigureMergePolicy(t *testing.T) {
	e, c := liveTestEngine(t, 0)
	if err := e.ConfigureMergePolicy(-2); err == nil {
		t.Fatal("ConfigureMergePolicy(-2) accepted")
	}
	if err := e.ConfigureMergePolicy(-1); err != nil {
		t.Fatalf("disable rejected: %v", err)
	}
	for round := 0; round < 4; round++ {
		if err := e.AddDocuments(moreDocs(e, 2, 60+round)); err != nil {
			t.Fatal(err)
		}
	}
	if e.NumSegments() != 5 {
		t.Fatalf("merging disabled but %d segments, want 5", e.NumSegments())
	}
	// Re-enabling with a tight bound folds the set back down.
	if err := e.ConfigureMergePolicy(2); err != nil {
		t.Fatalf("re-enable rejected: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.NumSegments() > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("merge policy left %d segments", e.NumSegments())
		}
		time.Sleep(time.Millisecond)
	}
	assertClaim1(t, e, c, liveQueries(e)[1])
}

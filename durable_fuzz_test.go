package embellish

import (
	"os"
	"path/filepath"
	"testing"

	"embellish/internal/wal"
)

// Golden durable-state fixture: a checkpoint file plus a journal
// segment with a few operations, checked in under testdata/durable/ as
// fuzz seeds (and regenerated, after DELIBERATE format changes only,
// with -update-golden — the same flag as the engine-file goldens).
const (
	goldenDurableDir  = "testdata/durable"
	goldenDurableCkpt = "checkpoint-0000000000000000.bin"
	goldenDurableLog  = "wal-0000000000000000.log"
)

// goldenDurableState drives the deterministic fixture workload into
// dir: the 12-doc store world, two adds and a delete, journaled but
// never checkpointed — so the log carries real records of every op
// type.
func goldenDurableState(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	e, texts := durableStoreWorld(t, dir, 12, 32)
	lemmas := miniLemmas()
	for i := 0; i < 2; i++ {
		id := e.NextDocID()
		texts[id] = storeDocText(id, lemmas)
		if err := e.AddDocuments([]Document{{ID: id, Text: texts[id]}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DeleteDocuments([]int{1, 12}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestGoldenDurableSeeds(t *testing.T) {
	if *updateGolden {
		src := goldenDurableState(t)
		if err := os.MkdirAll(goldenDurableDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{goldenDurableCkpt, goldenDurableLog} {
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatalf("fixture %s: %v", name, err)
			}
			if err := os.WriteFile(filepath.Join(goldenDurableDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The checked-in fixture must recover, with or without -update-golden.
	dir := t.TempDir()
	for _, name := range []string{goldenDurableCkpt, goldenDurableLog} {
		data, err := os.ReadFile(filepath.Join(goldenDurableDir, name))
		if err != nil {
			t.Fatalf("golden durable fixture missing (regenerate with -update-golden): %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e, err := OpenDurable(dir, Options{})
	if err != nil {
		t.Fatalf("golden durable state does not recover: %v", err)
	}
	defer e.Close()
	st, ok := e.WALStatus()
	if !ok || st.Seq != 3 {
		t.Fatalf("golden recovery WALStatus = %+v, want seq 3", st)
	}
	if e.NumDocs() != 12 || e.NextDocID() != 14 {
		t.Fatalf("golden recovery corpus: %d live, next %d; want 12 live, next 14", e.NumDocs(), e.NextDocID())
	}
}

// FuzzWALRecover: the journal is untrusted input — a crash can tear
// it, disk corruption can scramble it, and a hostile party shipping a
// durable directory between machines can craft it. Recovery must
// survive ARBITRARY log bytes next to a valid checkpoint: no panics,
// no allocations beyond the input's own size (the decoder bounds every
// declared count by the remaining bytes, the same forged-count class
// as the wire and engine-file fixes), and always either a coherent
// engine or a clean error.
func FuzzWALRecover(f *testing.F) {
	ckpt, err := os.ReadFile(filepath.Join(goldenDurableDir, goldenDurableCkpt))
	if err != nil {
		f.Fatalf("golden durable fixture missing (regenerate with -update-golden): %v", err)
	}
	log, err := os.ReadFile(filepath.Join(goldenDurableDir, goldenDurableLog))
	if err != nil {
		f.Fatalf("golden durable fixture missing (regenerate with -update-golden): %v", err)
	}
	f.Add(log)
	f.Add(log[:len(log)/2])
	f.Add(log[:13])
	f.Add([]byte("EWAL\x01\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte{})
	f.Add([]byte("EENG not a log"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, goldenDurableCkpt), ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, goldenDurableLog), data, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := OpenDurable(dir, Options{})
		if err != nil {
			return // a clean error is a correct outcome
		}
		defer e.Close()
		// Accepted recoveries must be coherent enough to serve, exactly
		// like FuzzLoadEngine's contract for accepted files.
		if e.NumDocs() < 0 || e.NextDocID() < e.NumDocs() {
			t.Fatalf("incoherent doc counts: %d live, next %d", e.NumDocs(), e.NextDocID())
		}
		if e.NumSegments() < 1 {
			t.Fatalf("engine with %d segments accepted", e.NumSegments())
		}
		st, ok := e.WALStatus()
		if !ok {
			t.Fatal("recovered engine is not durable")
		}
		if st.Seq < st.CheckpointSeq {
			t.Fatalf("journal position %d behind checkpoint %d", st.Seq, st.CheckpointSeq)
		}
		if e.StoresDocuments() {
			for _, id := range []int{0, e.NextDocID() - 1} {
				_, _ = e.Document(id)
			}
		}
		// The recovered engine must still journal: its directory was
		// truncated/reopened by recovery, so an append must succeed.
		if err := e.DeleteDocuments([]int{0}); err == nil {
			if _, err := e.Document(0); err == nil {
				t.Fatal("journaled delete did not apply")
			}
		}
	})
}

// TestWALRecoverFuzzSeeds runs the fuzz body over its seed corpus in
// a plain test run, so `go test` exercises the recovery grammar even
// where fuzzing is not invoked.
func TestWALRecoverFuzzSeeds(t *testing.T) {
	log, err := os.ReadFile(filepath.Join(goldenDurableDir, goldenDurableLog))
	if err != nil {
		t.Fatalf("golden durable fixture missing (regenerate with -update-golden): %v", err)
	}
	ckpt, err := os.ReadFile(filepath.Join(goldenDurableDir, goldenDurableCkpt))
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range [][]byte{log, log[:len(log)/2], log[:13], {}, []byte("EWALx")} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, goldenDurableCkpt), ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wal.LogPath(dir, 0), data, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := OpenDurable(dir, Options{})
		if err != nil {
			continue
		}
		if e.NumDocs() < 0 {
			t.Fatalf("seed %d: incoherent engine", i)
		}
		e.Close()
	}
}
